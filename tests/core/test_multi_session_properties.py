"""Property-based tests of the multi-session mux
(:mod:`repro.core.drivers.multi`).

Random interleavings of accept / join / close / failover against one
:class:`MultiSessionServer` must preserve the serving invariants:

- **isolation**: no session ever receives another session's bytes;
- **no leaks**: after every session closes, the connection table and
  the session map are empty and accepts == teardowns;
- **no resurrection**: a retired session's outstanding join
  credentials are dead -- a late MPJOIN must fail, not revive it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import PSK, make_net

from repro.core import TcplsClient
from repro.core.drivers.multi import (
    ConnectionTable,
    CookieCache,
    MultiSessionServer,
)
from repro.core.drivers.sim import SimDriver
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

PORT = 4443
N_PATHS = 3


class _EchoClient:
    """One scripted client: sends tagged bytes, collects the echo."""

    def __init__(self, sim, stack, topo, tag):
        self.sim = sim
        self.topo = topo
        self.tag = tag
        self.sent = b""
        self.received = b""
        self.stream = None
        self.client = TcplsClient(sim, stack, psk=PSK)
        self.client.on_stream_data = self._on_data
        p = topo.path(0)
        self.client.connect(p.client_addr, Endpoint(p.server_addr, PORT))

    def _on_data(self, stream):
        self.received += stream.recv()

    def send_chunk(self):
        if self.stream is None:
            conn = next(c for c in self.client.conns if c.usable())
            self.stream = self.client.create_stream(conn)
        payload = self.tag * 512
        self.stream.send(payload)
        self.sent += payload

    def join(self, path_index):
        p = self.topo.path(path_index)
        self.client.join(p.client_addr,
                         remote=Endpoint(p.server_addr, PORT))

    def fail_primary(self):
        """Declare the stream-carrying connection dead (the UTO path's
        outcome, minus the timer wait) and fail over to a joined one."""
        self.client.enable_failover()
        self.client.conn_failed(self.stream.connection, "test")
        self.send_chunk()


def _mux_net(seed):
    sim = Simulator(seed=seed)
    topo = build_multipath(sim, n_paths=N_PATHS, families=[4, 6, 4])
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    mux = MultiSessionServer(SimDriver(sim, sstack), PORT, PSK,
                             auto_retire=True)

    def serve(session):
        session.on_stream_data = lambda s: s.send(s.recv())

    mux.on_session = serve
    return sim, topo, cstack, mux


def _settle(sim, seconds=1.0):
    sim.run(until=sim.now + seconds)


@settings(max_examples=8, deadline=None)
@given(
    st.lists(st.sampled_from(["accept", "join", "close", "failover"]),
             min_size=4, max_size=14),
    st.integers(0, 2**31 - 1),
)
def test_property_random_churn_interleavings(ops, seed):
    sim, topo, cstack, mux = _mux_net(seed % 1000 + 1)
    rng = random.Random(seed)
    live = []
    tags = iter(bytes([c]) for c in range(65, 65 + 64))

    for op in ops:
        if op == "accept":
            ec = _EchoClient(sim, cstack, topo, next(tags))
            _settle(sim)
            assert ec.client.ready
            ec.send_chunk()
            live.append(ec)
        elif op == "join" and live:
            ec = rng.choice(live)
            if ec.client.cookies or ec.client.tokens:
                ec.join(rng.randrange(N_PATHS))
        elif op == "close" and live:
            ec = live.pop(rng.randrange(len(live)))
            _settle(sim)          # let the echo drain before closing
            ec.client.close()
        elif op == "failover" and live:
            ec = rng.choice(live)
            joined = [c for c in ec.client.conns[1:] if c.usable()]
            if joined and ec.stream is not None:
                ec.fail_primary()
        _settle(sim, 0.3)
        closed = [ec for ec in live if not ec.client.ready]
        for ec in closed:         # a failover op can kill a session
            live.remove(ec)

    _settle(sim)
    done = []
    for ec in live:
        ec.client.close()
        done.append(ec)
    _settle(sim)

    # Isolation: every client got back exactly its own bytes.
    for ec in done:
        assert ec.received == ec.sent, \
            "session %r echo mismatch" % ec.tag
        assert set(ec.received) <= set(ec.tag), \
            "session %r received foreign bytes" % ec.tag

    # No leaks: the table and session map drained to zero.
    assert len(mux.table) == 0
    assert mux.session_count() == 0
    assert mux.table.accepts == mux.table.teardowns
    assert not mux.paused_fds()


def test_cookie_cache_never_resurrects_retired_session():
    sim, topo, cstack, mux = _mux_net(7)
    ec = _EchoClient(sim, cstack, topo, b"A")
    _settle(sim)
    assert ec.client.ready and ec.client.cookies

    session = next(iter(mux.sessions.values()))
    mux.retire_session(session)
    assert mux.session_count() == 0
    assert len(mux.cache) == 0

    # A join presenting one of the retired session's cookies must be
    # refused (transport aborted), not resurrect the session.
    ec.join(1)
    _settle(sim)
    assert mux.session_count() == 0
    assert len(mux.table) == 0
    assert len(ec.client.conns) == 1 or not ec.client.conns[1].alive


@settings(max_examples=20, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["register", "pop", "invalidate"]),
              st.integers(0, 5), st.integers(0, 11)),
    max_size=40,
))
def test_cookie_cache_index_consistency(steps):
    """The credential map and the per-session reverse index stay in
    lockstep under arbitrary register/pop/invalidate sequences."""

    class FakeSession:
        def __init__(self, obs_id):
            self.obs_id = obs_id

    cache = CookieCache()
    sessions = [FakeSession(i) for i in range(6)]
    for op, sid, cred_i in steps:
        cred = b"c%02d" % cred_i
        if op == "register":
            cache.register(sessions[sid], cred)
        elif op == "pop":
            cache.pop(cred)
        else:
            cache.invalidate_session(sessions[sid])
        # Invariant: reverse index matches the forward map exactly.
        forward = {}
        for s_id, creds in cache._by_session.items():
            assert creds, "empty reverse-index bucket leaked"
            for c in creds:
                forward[c] = s_id
        assert forward == {
            c: s.obs_id for c, s in cache._by_credential.items()
        }


def test_connection_table_counts_and_lookup():
    table = ConnectionTable()

    class T:
        pass

    class S:
        obs_id = 99

    t1, t2 = T(), T()
    e1 = table.add_pending(t1)
    e2 = table.add_pending(t2)
    assert len(table) == 2 and table.peak == 2
    assert table.lookup(e1.fd) is e1
    session = S()
    assert table.attach(e1.fd, session, conn="c") is e1
    assert [e.fd for e in table.entries_for(session)] == [e1.fd]
    table.remove(e1.fd)
    table.remove(e2.fd)
    assert len(table) == 0
    assert table.accepts == table.teardowns == 2
    assert table.by_session == {}
    # Removing a racing (already-gone) fd is a no-op, not an error.
    assert table.remove(e1.fd) is None
