"""TCP options conveyed inside encrypted records (Secs. 3.1 / 4.2)."""

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.middlebox import OptionStrippingFirewall
from repro.tcp.options import MAX_OPTIONS_BYTES


def test_arbitrary_option_reaches_peer():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    seen = []
    sessions[0].on_tcp_option = lambda c, kind, data: seen.append(
        (kind, data))
    client.send_tcp_option(conn, 253, b"experiment")
    sim.run(until=sim.now + 0.3)
    assert (253, b"experiment") in seen


def test_option_larger_than_tcp_header_allows():
    """The 40-byte TCP options area does not constrain record-conveyed
    options (the paper's core extensibility argument)."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    big = bytes(range(256)) * 4   # 1 KiB >> 40 B
    assert len(big) > MAX_OPTIONS_BYTES
    seen = []
    sessions[0].on_tcp_option = lambda c, kind, data: seen.append(
        (kind, data))
    client.send_tcp_option(conn, 254, big)
    sim.run(until=sim.now + 0.3)
    assert (254, big) in seen


def test_record_conveyed_option_survives_option_stripper():
    """A firewall that strips unknown wire options cannot touch an
    option travelling inside an encrypted record."""
    sim, topo, cstack, sstack = make_net()
    stripper = OptionStrippingFirewall()
    topo.path(0).c2s.add_middlebox(stripper)
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    seen = []
    sessions[0].on_tcp_option = lambda c, kind, data: seen.append(kind)
    client.send_tcp_option(conn, 99, b"hidden")
    sim.run(until=sim.now + 0.3)
    assert 99 in seen
    assert stripper.stripped == 0  # nothing visible to strip


def test_options_delivered_reliably_in_order():
    sim, topo, cstack, sstack = make_net()
    topo.path(0).c2s.loss_rate = 0.05
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    seen = []
    sessions[0].on_tcp_option = lambda c, kind, data: seen.append(data)
    for index in range(20):
        client.send_tcp_option(conn, 253, bytes([index]))
    sim.run(until=sim.now + 3)
    assert seen == [bytes([index]) for index in range(20)]
