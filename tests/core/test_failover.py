"""Failover (Sec. 3.3.2, Fig. 4): ACKs, SYNC, replay, triggers."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.middlebox import RstInjector


def download_setup(sim, topo, cstack, sstack, size, uto=0.25):
    """Server pushes ``size`` bytes to the client with failover enabled.

    Returns (client, sessions, received bytearray, done list).
    """
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    received = bytearray()
    done = []

    def on_session(sess):
        sessions.append(sess)
        sess.enable_failover()

        def on_stream_data(stream):
            request = stream.recv()
            if request.startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(b"F" * size)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_client_stream(stream):
        received.extend(stream.recv())
        if len(received) >= size and not done:
            done.append(sim.now)

    client.on_stream_data = on_client_stream
    connect_tcpls(sim, topo, client)
    client.set_user_timeout(client.conns[0], uto)
    request = client.create_stream(client.conns[0])
    request.send(b"GET /file")
    return client, sessions, received, done


def test_blackhole_recovery_via_uto():
    sim, topo, cstack, sstack = make_net()
    size = 4 << 20
    client, sessions, received, done = download_setup(
        sim, topo, cstack, sstack, size)
    failures = []
    client.on_conn_failed = lambda c, r: failures.append((sim.now, r))
    topo.path(0).blackhole(sim, 1.0)
    sim.run(until=20)
    assert done, "transfer never completed"
    assert bytes(received) == b"F" * size
    assert failures and failures[0][1] == "uto"
    # UTO = 250 ms: detection within ~3x of it.
    assert failures[0][0] - 1.0 < 0.8
    assert topo.path(1).s2c.stats.tx_packets > 10  # moved to path 1


def test_rst_recovery_is_fast():
    sim, topo, cstack, sstack = make_net()
    size = 4 << 20
    client, sessions, received, done = download_setup(
        sim, topo, cstack, sstack, size)
    injector = RstInjector()
    topo.path(0).s2c.add_middlebox(injector)
    failures = []
    client.on_conn_failed = lambda c, r: failures.append((sim.now, r))
    injector.schedule_rst(sim, 1.0)
    sim.run(until=20)
    assert done and bytes(received) == b"F" * size
    assert failures and failures[0][1] == "rst"
    assert failures[0][0] == pytest.approx(1.0, abs=0.1)


def test_no_data_lost_or_duplicated_across_failover():
    sim, topo, cstack, sstack = make_net()
    size = 2 << 20
    client, sessions, received, done = download_setup(
        sim, topo, cstack, sstack, size)
    topo.path(0).blackhole(sim, 0.6)
    sim.run(until=20)
    assert len(received) == size
    assert bytes(received) == b"F" * size  # exactly once, in order


def test_sync_and_replay_stats():
    sim, topo, cstack, sstack = make_net()
    client, sessions, received, done = download_setup(
        sim, topo, cstack, sstack, 2 << 20)
    topo.path(0).blackhole(sim, 0.6)
    sim.run(until=20)
    server_session = sessions[0]
    assert server_session.stats["syncs_sent"] >= 1 or \
        client.stats["syncs_sent"] >= 1
    assert server_session.stats["records_replayed"] >= 1
    assert server_session.stats["failovers"] + client.stats[
        "failovers"] >= 1


def test_acks_prune_replay_buffer():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.enable_failover()
    sim.run(until=sim.now + 0.2)
    stream = client.create_stream(client.conns[0])
    sessions[0].on_stream_data = lambda st: st.recv()
    stream.send(b"a" * (2 << 20))
    sim.run(until=sim.now + 5)
    # With ACKs every 16 records the sender must not hold ~128 records.
    assert len(stream.unacked) < 40
    assert sessions[0].stats["acks_sent"] > 3


def test_failover_disabled_means_no_acks():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    stream = client.create_stream(client.conns[0])
    sessions[0].on_stream_data = lambda st: st.recv()
    stream.send(b"a" * (1 << 20))
    sim.run(until=sim.now + 3)
    assert sessions[0].stats["acks_sent"] == 0
    assert stream.unacked == []


def test_bidirectional_failover_replays_client_data():
    """The client was also sending when the path died; its unacked
    records must be replayed too."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    server_rx = bytearray()

    def on_session(sess):
        sessions.append(sess)
        sess.enable_failover()
        sess.on_stream_data = lambda st: server_rx.extend(st.recv())

    server.on_session = on_session
    connect_tcpls(sim, topo, client)
    client.set_user_timeout(client.conns[0], 0.25)
    stream = client.create_stream(client.conns[0])
    size = 2 << 20
    stream.send(b"C" * size)
    topo.path(0).blackhole(sim, 0.4)
    sim.run(until=20)
    assert bytes(server_rx) == b"C" * size
