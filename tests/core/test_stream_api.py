"""Stream and group API semantics: close, reads, error states."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair


def setup(n_paths=2):
    sim, topo, cstack, sstack = make_net(n_paths=n_paths)
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    return sim, topo, client, sessions, conn


def test_stream_close_carries_fin_flag():
    sim, topo, client, sessions, conn = setup()
    seen = []

    def on_stream_data(stream):
        seen.append((stream.recv(), stream.fin_received))

    sessions[0].on_stream_data = on_stream_data
    stream = client.create_stream(conn)
    stream.send(b"last words")
    stream.close()
    sim.run(until=sim.now + 0.5)
    assert b"".join(data for data, _fin in seen) == b"last words"
    assert seen[-1][1] is True  # FIN observed


def test_send_after_close_rejected():
    sim, topo, client, sessions, conn = setup()
    stream = client.create_stream(conn)
    stream.close()
    with pytest.raises(RuntimeError):
        stream.send(b"too late")


def test_empty_close_sends_bare_fin():
    sim, topo, client, sessions, conn = setup()
    fins = []

    def on_stream_data(stream):
        stream.recv()
        if stream.fin_received:
            fins.append(stream.stream_id)

    sessions[0].on_stream_data = on_stream_data
    stream = client.create_stream(conn)
    stream.close()   # no data at all
    sim.run(until=sim.now + 0.5)
    assert fins == [stream.stream_id]


def test_partial_reads():
    sim, topo, client, sessions, conn = setup()
    collected = []
    sessions[0].on_stream_data = lambda st: collected.append(st)
    stream = client.create_stream(conn)
    stream.send(b"abcdefgh")
    sim.run(until=sim.now + 0.5)
    server_stream = collected[-1]
    assert server_stream.recv(3) == b"abc"
    assert server_stream.recv(3) == b"def"
    assert server_stream.recv() == b"gh"
    assert server_stream.recv() == b""


def test_queued_bytes_drain():
    sim, topo, client, sessions, conn = setup()
    sessions[0].on_stream_data = lambda st: st.recv()
    stream = client.create_stream(conn)
    stream.send(b"q" * (1 << 20))
    assert stream.queued_bytes > 0 or conn.tcp.unsent_bytes() > 0
    sim.run(until=sim.now + 5)
    assert stream.queued_bytes == 0


def test_group_send_after_close_rejected():
    sim, topo, client, sessions, conn = setup()
    group = client.create_coupled_group([conn])
    group.close()
    with pytest.raises(RuntimeError):
        group.send(b"x")


def test_group_remove_last_stream_pauses_delivery():
    """Removing every member stream stops transmission; re-adding one
    resumes it (the migration building block)."""
    sim, topo, client, sessions, conn = setup()
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.3)
    received = []
    sessions[0].on_group_data = lambda g: received.append(len(g.recv()))
    group = client.create_coupled_group([conn])
    member = group.streams[0]
    group.send(b"g" * 200000)
    sim.run(until=sim.now + 0.1)
    client.remove_group_stream(group, member)
    drained = sum(received)
    sim.run(until=sim.now + 1.0)
    # Some tail drains from TCP buffers, then delivery stalls.
    stalled_at = sum(received)
    sim.run(until=sim.now + 1.0)
    assert sum(received) == stalled_at
    client.add_group_stream(group, client.conns[1])
    sim.run(until=sim.now + 5.0)
    assert sum(received) == 200000


def test_stream_ids_never_reused():
    sim, topo, client, sessions, conn = setup()
    ids = set()
    for _ in range(10):
        stream = client.create_stream(conn)
        assert stream.stream_id not in ids
        ids.add(stream.stream_id)
        stream.close()
    srv = sessions[0]
    sim.run(until=sim.now + 0.5)
    server_stream = srv.create_stream(srv.conns[0])
    assert server_stream.stream_id not in ids  # disjoint id spaces
