"""Sec. 3.4 unlinkable joins: single-use tokens replace SESSID+cookie."""

import pytest

from helpers import PSK, connect_tcpls, make_net

from repro.core import TcplsClient, TcplsServer
from repro.net.middlebox import Middlebox
from repro.tls.extensions import (
    EXT_TCPLS_JOIN,
    EXT_TCPLS_SESSID,
    EXT_TCPLS_TOKEN,
)
from repro.tls.handshake_messages import ClientHello, HS_CLIENT_HELLO, \
    parse_handshake_messages
from repro.tls.record import CONTENT_HANDSHAKE, RECORD_HEADER_SIZE


def token_pair(sim, topo, cstack, sstack, **server_kwargs):
    server = TcplsServer(sim, sstack, 443, psk=PSK, token_mode=True,
                         **server_kwargs)
    sessions = []
    server.on_session = sessions.append
    client = TcplsClient(sim, cstack, psk=PSK)
    return client, server, sessions


class ClientHelloSniffer(Middlebox):
    """Collects the cleartext ClientHello extension bytes per SYN-borne
    or first-flight handshake record (what an on-path observer sees)."""

    def __init__(self):
        super().__init__("sniffer")
        self.hellos = []

    def process(self, packet):
        self.processed += 1
        if packet.proto != "tcp" or not packet.payload.payload:
            return packet
        data = packet.payload.payload
        if data[0] != CONTENT_HANDSHAKE:
            return packet
        body = data[RECORD_HEADER_SIZE:]
        messages, _ = parse_handshake_messages(body)
        for msg_type, msg_body, _raw in messages:
            if msg_type == HS_CLIENT_HELLO:
                self.hellos.append(ClientHello.decode(msg_body))
        return packet


def test_token_mode_join_works():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = token_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    assert client.tokens and not client.cookies
    joined = []
    client.on_join = joined.append
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert joined
    assert len(sessions[0].conns) == 2
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[1])
    stream.send(b"token-joined" * 300)
    sim.run(until=sim.now + 1)
    assert bytes(received) == b"token-joined" * 300


def test_token_is_single_use():
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 4, 4])
    client, server, sessions = token_pair(sim, topo, cstack, sstack,
                                          auto_replenish=False)
    connect_tcpls(sim, topo, client)
    used = client.tokens[0]
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    client.tokens.insert(0, used)  # replay
    failures = []
    client.on_conn_failed = lambda c, r: failures.append(r)
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 1)
    assert failures
    assert len(sessions[0].conns) == 2


def test_forged_token_rejected():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = token_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.tokens = [b"\xAA" * 16]
    failures = []
    client.on_conn_failed = lambda c, r: failures.append(r)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 1)
    assert failures and len(sessions[0].conns) == 1


def test_tokens_replenished_on_join():
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 6, 4])
    client, server, sessions = token_pair(sim, topo, cstack, sstack,
                                          cookie_batch=1)
    connect_tcpls(sim, topo, client)
    assert len(client.tokens) == 1
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    assert len(client.tokens) >= 1  # batch refreshed in-band
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 0.5)
    assert len(sessions[0].conns) == 3


def test_unlinkability_no_value_repeats_on_the_wire():
    """The property Sec. 3.4 aims for: an observer of the (cleartext)
    ClientHellos of a session's connections sees no common identifier.
    With SESSID+cookie joins, the SESSID repeats; with tokens, nothing
    does."""
    # -- token mode ------------------------------------------------------
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 4, 4])
    sniffers = []
    for path in topo.paths:
        sniffer = ClientHelloSniffer()
        path.c2s.add_middlebox(sniffer)
        sniffers.append(sniffer)
    client, server, sessions = token_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 0.5)
    hellos = [h for sniffer in sniffers for h in sniffer.hellos]
    assert len(hellos) >= 3
    tcpls_payloads = [
        ext.data
        for hello in hellos
        for ext in hello.extensions
        if ext.ext_type in (EXT_TCPLS_JOIN, EXT_TCPLS_TOKEN,
                            EXT_TCPLS_SESSID) and ext.data
    ]
    # Every credential observed is unique: connections unlinkable.
    assert len(set(tcpls_payloads)) == len(tcpls_payloads)

    # -- classic cookie mode shows the linkable SESSID -------------------
    sim, topo, cstack, sstack = make_net(n_paths=3, families=[4, 4, 4])
    sniffers = []
    for path in topo.paths:
        sniffer = ClientHelloSniffer()
        path.c2s.add_middlebox(sniffer)
        sniffers.append(sniffer)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    server.on_session = lambda s: None
    client = TcplsClient(sim, cstack, psk=PSK)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.5)
    client.join(topo.path(2).client_addr)
    sim.run(until=sim.now + 0.5)
    hellos = [h for sniffer in sniffers for h in sniffer.hellos]
    join_exts = [
        ext.data for hello in hellos for ext in hello.extensions
        if ext.ext_type == EXT_TCPLS_JOIN
    ]
    assert len(join_exts) == 2
    # Both joins lead with the same 16-byte SESSID: linkable.
    assert join_exts[0][:16] == join_exts[1][:16]
