"""SocketDriver integration: the same engine over real OS loopback.

The acceptance test for the sans-I/O split: a multi-stream transfer
with record-level encryption runs over actual kernel TCP sockets,
driven by the identical :mod:`repro.core.engine` code path the
simulator tests exercise.  Marked ``smoke`` (real sockets + wall-clock
time; excluded from environments without loopback networking).
"""

import pytest

from repro.core.drivers.sockets import SocketDriver
from repro.core.engine import TcplsClientEngine, TcplsServerEngine

pytestmark = pytest.mark.smoke

PSK = b"socket-driver-test-psk"


def _connect_pair(driver, cipher="chacha20poly1305", **server_kwargs):
    sessions = []
    server = TcplsServerEngine(driver, 0, PSK, cipher_names=(cipher,),
                               **server_kwargs)
    server.on_session = sessions.append
    client = TcplsClientEngine(driver, PSK, cipher_names=(cipher,))
    ready = []
    client.on_ready = ready.append
    client.connect(None, driver.endpoint("127.0.0.1", server.port))
    driver.run_until(lambda: ready and sessions, timeout=10.0)
    return client, server, sessions[0]


def test_handshake_over_loopback_negotiates_tcpls():
    driver = SocketDriver()
    try:
        client, _server, session = _connect_pair(driver)
        assert client.tcpls_enabled
        assert client.session_id == session.session_id
        assert len(client.cookies) > 0
    finally:
        driver.close()


def test_multi_stream_encrypted_transfer_over_loopback():
    driver = SocketDriver()
    try:
        client, _server, session = _connect_pair(driver)
        received = {}

        def on_stream_data(stream):
            received.setdefault(stream.stream_id, bytearray()).extend(
                stream.recv())

        session.on_stream_data = on_stream_data

        payloads = {}
        for fill in (b"A", b"B"):
            stream = client.create_stream(client.conns[0])
            payloads[stream.stream_id] = fill * (128 * 1024)
            stream.send(payloads[stream.stream_id])
            stream.close()
        assert len(payloads) == 2

        driver.run_until(
            lambda: all(len(received.get(sid, b"")) == len(body)
                        for sid, body in payloads.items()),
            timeout=30.0,
        )
        for sid, body in payloads.items():
            assert bytes(received[sid]) == body
        # Record-level encryption actually happened on both ends.
        assert client.stats["bytes_sealed"] >= 2 * 128 * 1024
        assert session.stats["bytes_opened"] >= 2 * 128 * 1024
    finally:
        driver.close()


def _load_example():
    import importlib.util
    import pathlib

    path = (pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "loopback_sockets.py")
    spec = importlib.util.spec_from_file_location("loopback_sockets", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_echo_roundtrip_via_example_helper():
    example = _load_example()
    echo, received = example.run_echo_and_transfer(payload_kib=32,
                                                   verbose=False)
    assert echo == b"echo:hello over real sockets"
    lengths = sorted(len(v) for v in received.values())
    assert lengths[-2:] == [32 * 1024, 32 * 1024]


def test_hundred_connection_storm_over_loopback():
    """Accept/echo/close storm: 100 kernel-socket TCPLS sessions into
    one :class:`MultiSessionServer` on a single selectors loop --
    every session isolated, every byte echoed, table drained to zero
    after the close wave.  psk_ke handshakes keep it CI-safe."""
    from repro.core.drivers.multi import MultiSessionServer

    n_clients = 100
    driver = SocketDriver(backlog=256)
    try:
        mux = MultiSessionServer(driver, 0, PSK, auto_retire=True,
                                 cipher_names=("chacha20poly1305",))

        def serve(session):
            session.on_stream_data = lambda s: s.send(s.recv())

        mux.on_session = serve

        clients = []
        echoes = []
        for i in range(n_clients):
            client = TcplsClientEngine(
                driver, PSK, cipher_names=("chacha20poly1305",),
                key_exchange="psk",
            )
            echo = bytearray()
            client.on_stream_data = \
                (lambda buf: lambda s: buf.extend(s.recv()))(echo)
            client.connect(None, driver.endpoint("127.0.0.1", mux.port))
            clients.append(client)
            echoes.append(echo)

        driver.run_until(lambda: all(c.ready for c in clients),
                         timeout=60.0)
        assert mux.session_count() == n_clients
        assert len(mux.table) == n_clients

        payloads = []
        for i, client in enumerate(clients):
            payload = bytes([i % 251]) * 1024
            stream = client.create_stream(client.conns[0])
            stream.send(payload)
            payloads.append(payload)

        driver.run_until(
            lambda: all(len(e) == len(p)
                        for e, p in zip(echoes, payloads)),
            timeout=60.0,
        )
        for echo, payload in zip(echoes, payloads):
            assert bytes(echo) == payload   # isolation: own bytes only

        for client in clients:
            client.close()
        driver.run_until(
            lambda: mux.session_count() == 0 and len(mux.table) == 0,
            timeout=60.0,
        )
        assert mux.table.accepts == mux.table.teardowns == n_clients
        assert mux.retired == n_clients
    finally:
        driver.close()


def test_tcp_info_reflects_kernel_state():
    driver = SocketDriver()
    try:
        client, _server, _session = _connect_pair(driver)
        info = client.conns[0].tcp_info()
        assert info["mss"] > 0
        assert info["cwnd_bytes"] > 0
        assert "retransmissions" in info
    finally:
        driver.close()
