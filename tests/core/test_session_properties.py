"""Property-based and fault-injection tests of session invariants.

The central invariant (Fig. 4's promise): whatever failures occur and
whatever is replayed, application data is delivered **exactly once, in
order**, per stream and per coupled group.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import PSK, connect_tcpls, make_net, tcpls_pair

from repro.net.address import Endpoint
from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.tcp import TcpStack


@settings(max_examples=6, deadline=None)
@given(st.floats(0.3, 3.0), st.booleans())
def test_property_failover_exactly_once(outage_at, second_outage):
    """Blackhole the active path at a random time (optionally the next
    path too, later): the download still arrives byte-exact."""
    sim = Simulator(seed=31)
    topo = build_multipath(sim, n_paths=3, families=[4, 6, 4])
    cstack, sstack = TcpStack(sim, topo.client), TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    size = 3 << 20
    payload = bytes(range(256)) * (size // 256)
    received = bytearray()
    done = []

    def on_session(sess):
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(payload)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session
    client = TcplsClient(sim, cstack, psk=PSK, join_timeout=0.5)
    client.auto_user_timeout = 0.25

    def on_client_stream(stream):
        received.extend(stream.recv())
        if len(received) >= size and not done:
            done.append(sim.now)

    client.on_stream_data = on_client_stream

    def on_ready(_s):
        request = client.create_stream(client.conns[0])
        request.send(b"GET /file")
        request.close()

    client.on_ready = on_ready
    p0 = topo.path(0)
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    topo.path(0).blackhole(sim, outage_at)
    if second_outage:
        topo.path(1).blackhole(sim, outage_at + 1.5)
    sim.run(until=40)
    assert done, "download did not complete"
    assert bytes(received) == payload  # exactly once, in order


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 5000)),
                min_size=1, max_size=40))
def test_property_interleaved_streams_keep_integrity(schedule):
    """Arbitrary interleavings of four streams: each stream's bytes
    arrive in order and un-mixed."""
    sim, topo, cstack, sstack = make_net(n_paths=1, families=[4])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    per_stream = {}

    def on_stream_data(stream):
        per_stream.setdefault(stream.stream_id, bytearray()).extend(
            stream.recv())

    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = on_stream_data
    streams = [client.create_stream(conn) for _ in range(4)]
    expected = {s.stream_id: bytearray() for s in streams}
    for index, size in schedule:
        marker = bytes([index]) * size
        streams[index].send(marker)
        expected[streams[index].stream_id] += marker
    sim.run(until=sim.now + 10)
    for stream_id, data in expected.items():
        assert bytes(per_stream.get(stream_id, b"")) == bytes(data)


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 12))
def test_property_group_reassembles_under_any_path_count(n_chunk_kib):
    """Coupled-group delivery is byte-exact regardless of chunk sizing
    against a 2-path round-robin split."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.3)
    received = bytearray()
    done = []

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete:
            done.append(sim.now)

    sessions[0].on_group_data = on_group_data
    group = client.create_coupled_group(client.alive_connections())
    payload = bytes(range(256)) * (n_chunk_kib * 16)
    for offset in range(0, len(payload), 1024 * n_chunk_kib):
        group.send(payload[offset:offset + 1024 * n_chunk_kib])
    group.close()
    sim.run(until=sim.now + 20)
    assert done
    assert bytes(received) == payload


def test_fault_injection_random_loss_with_failover():
    """2% random loss on both paths + a blackhole: still exactly-once."""
    sim = Simulator(seed=33)
    topo = build_multipath(sim, n_paths=2)
    for path in topo.paths:
        path.c2s.loss_rate = 0.02
        path.s2c.loss_rate = 0.02
    cstack, sstack = TcpStack(sim, topo.client), TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    size = 2 << 20
    payload = bytes(range(256)) * (size // 256)
    received = bytearray()

    def on_session(sess):
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(payload)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session
    client = TcplsClient(sim, cstack, psk=PSK)
    client.auto_user_timeout = 0.25
    client.on_stream_data = lambda st: received.extend(st.recv())
    client.on_ready = lambda s: client.create_stream(
        client.conns[0]).send(b"GET /x")
    p0 = topo.path(0)
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    topo.path(0).blackhole(sim, 1.0)
    sim.run(until=60)
    assert bytes(received) == payload


def test_fault_injection_forged_records_ignored():
    """An on-path attacker injecting bytes into the TCP stream cannot
    make the session accept data: forgeries count as demux drops and the
    connection-level damage is contained."""
    sim, topo, cstack, sstack = make_net(n_paths=1, families=[4])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(conn)
    stream.send(b"legit")
    sim.run(until=sim.now + 0.3)
    # Attacker: craft a syntactically valid TLS record with garbage.
    from repro.tls.record import encode_record_header

    srv_session = sessions[0]
    fake = encode_record_header(23, 100) + b"\x00" * 100
    srv_conn = srv_session.conns[0]
    srv_session._process_record(srv_conn, fake)
    stream.send(b" more")
    sim.run(until=sim.now + 0.5)
    assert srv_session.stats["demux_drops"] >= 1
    assert bytes(received) == b"legit more"
