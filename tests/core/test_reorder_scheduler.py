"""Reordering heap and record schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reorder import ReorderBuffer
from repro.core.scheduler import (
    LowestRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    WeightedScheduler,
)


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        buf = ReorderBuffer()
        assert buf.push(0, b"a") == [b"a"]
        assert buf.push(1, b"b") == [b"b"]
        assert buf.out_of_order == 0

    def test_gap_holds_then_releases(self):
        buf = ReorderBuffer()
        assert buf.push(2, b"c") == []
        assert buf.push(1, b"b") == []
        assert buf.depth == 2
        assert buf.push(0, b"a") == [b"a", b"b", b"c"]
        assert buf.depth == 0
        assert buf.out_of_order == 2

    def test_duplicates_dropped(self):
        buf = ReorderBuffer()
        buf.push(1, b"x")
        assert buf.push(1, b"x-again") == []
        assert buf.push(0, b"a") == [b"a", b"x"]
        assert buf.push(0, b"stale") == []

    def test_max_depth_statistic(self):
        buf = ReorderBuffer()
        for seq in (5, 4, 3, 2, 1):
            buf.push(seq, b"")
        assert buf.max_depth == 5

    @settings(max_examples=100)
    @given(st.permutations(list(range(25))))
    def test_property_any_permutation_delivers_in_order(self, order):
        buf = ReorderBuffer()
        released = []
        for seq in order:
            released.extend(buf.push(seq, seq))
        assert released == list(range(25))


class FakeConn:
    def __init__(self, srtt, cwnd=10_000, in_flight=0):
        self._srtt = srtt
        self.cc = type("CC", (), {"cwnd": cwnd})()
        self._in_flight = in_flight

    def tcp_info(self):
        return {"srtt": self._srtt}

    def bytes_in_flight(self):
        return self._in_flight

    def congestion_window(self):
        return self.cc.cwnd


class FakeStream:
    def __init__(self, srtt, in_flight=0):
        self.connection = type("C", (), {})()
        self.connection.tcp = FakeConn(srtt, in_flight=in_flight)


class TestSchedulers:
    def test_round_robin_alternates(self):
        scheduler = RoundRobinScheduler()
        streams = ["a", "b", "c"]
        picks = [scheduler.pick(streams) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_empty_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler().pick([])

    def test_lowest_rtt_prefers_fast_path(self):
        fast, slow = FakeStream(0.01), FakeStream(0.08)
        assert LowestRttScheduler().pick([slow, fast]) is fast

    def test_lowest_rtt_skips_full_cwnd(self):
        fast_full = FakeStream(0.01, in_flight=20_000)
        slow_open = FakeStream(0.08)
        assert LowestRttScheduler().pick([fast_full, slow_open]) is slow_open

    def test_weighted_ratio(self):
        scheduler = WeightedScheduler([3, 1])
        streams = ["a", "b"]
        picks = [scheduler.pick(streams) for _ in range(8)]
        assert picks.count("a") == 6 and picks.count("b") == 2

    def test_weighted_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedScheduler([])
        with pytest.raises(ValueError):
            WeightedScheduler([1, 0])

    def test_redundant_returns_all(self):
        streams = ["a", "b"]
        assert RedundantScheduler().pick(streams) == streams
