"""TCPLS failover under scripted fault scenarios.

Fig. 8's claim, pinned down adversarially: a session survives a
scripted primary-path flap no matter *when* it lands — during
steady-state transfer, while a join handshake is in flight, or in the
middle of an application-triggered migration — and application bytes
are delivered exactly once and in order per stream.
"""

import pytest

from helpers import PSK, connect_tcpls, tcpls_pair

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_faulty_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

pytestmark = pytest.mark.faults


def make_faulty_net(n_paths=2, seed=7, **topo_kwargs):
    """Like helpers.make_net but with the scenario-capable topology."""
    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=n_paths, **topo_kwargs)
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    return sim, topo, cstack, sstack


def download_setup(sim, topo, cstack, sstack, size, uto=0.25):
    """Server pushes ``size`` patterned bytes; failover enabled."""
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    payload = bytes(range(256)) * (size // 256)
    received = bytearray()
    done = []

    def on_session(sess):
        sessions.append(sess)
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(payload)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_client_stream(stream):
        received.extend(stream.recv())
        if len(received) >= len(payload) and not done:
            done.append(sim.now)

    client.on_stream_data = on_client_stream
    connect_tcpls(sim, topo, client)
    client.set_user_timeout(client.conns[0], uto)
    client.create_stream(client.conns[0]).send(b"GET /file")
    return client, sessions, payload, received, done


def test_flap_during_steady_state_transfer():
    sim, topo, cstack, sstack = make_faulty_net()
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 4 << 20)
    failures = []
    client.on_conn_failed = lambda c, r: failures.append((sim.now, r))
    # Scripted finite flap: primary path dead for 2 s mid-transfer.
    topo.flap_path(0, at=1.0, duration=2.0)
    sim.run(until=20)
    assert done, "transfer never completed"
    assert bytes(received) == payload      # exactly once, in order
    assert failures and failures[0][1] == "uto"
    assert topo.path(0).c2s.stats.dropped_by("flap") > 0
    assert topo.path(1).s2c.stats.tx_packets > 10  # moved to path 1


def test_flap_during_mid_handshake_join():
    """The flap lands while the join handshake on path 1 is in flight;
    the session must keep the primary alive and the stream intact."""
    sim, topo, cstack, sstack = make_faulty_net()
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 2 << 20)
    join_at = sim.now + 0.05
    sim.at(join_at, client.join, topo.path(1).client_addr)
    # Kill the join path just as the handshake starts, for 1 s.
    topo.flap_path(1, at=join_at + 0.005, duration=1.0)
    sim.run(until=20)
    assert done, "transfer never completed"
    assert bytes(received) == payload
    assert client.ready
    assert topo.path(1).c2s.stats.dropped_by("flap") > 0


def test_flap_during_concurrent_migration():
    """Fig. 10-style coupled-group migration with the *source* path
    flapping inside the migration window: every byte still arrives
    exactly once and in order."""
    sim, topo, cstack, sstack = make_faulty_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    size = 2 << 20
    payload = bytes(range(256)) * (size // 256)
    received = bytearray()
    done = []

    def on_session(sess):
        sessions.append(sess)
        sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                group = sess.create_coupled_group([sess.conns[0]])
                sess.migration_group = group
                group.send(payload)
                group.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_group_data(group):
        received.extend(group.recv())
        if group.complete and not done:
            done.append(sim.now)

    client.on_group_data = on_group_data
    connect_tcpls(sim, topo, client)
    client.set_user_timeout(client.conns[0], 0.25)
    # Fig. 10 sequencing: request on the primary, join in parallel, so
    # the group starts out on path 0.
    client.create_stream(client.conns[0]).send(b"GET /file")
    client.join(topo.path(1).client_addr)
    sim.run(until=sim.now + 0.3)
    assert len(client.conns) == 2 and client.conns[1].usable()

    def migrate():
        sess = sessions[0]
        group = sess.migration_group
        old = list(group.streams)
        sess.add_group_stream(group, sess.conns[1])

        def finish():
            for stream in old:
                sess.remove_group_stream(group, stream)
        sim.schedule(0.4, finish)

    migrate_at = sim.now + 0.2
    sim.at(migrate_at, migrate)
    # The path being migrated *away from* dies inside the window.
    topo.flap_path(0, at=migrate_at + 0.1, duration=1.5)
    sim.run(until=30)
    assert done, "migration transfer never completed"
    assert bytes(received) == payload      # exactly once, in order
    assert topo.fault_drops(0) > 0         # the flap really bit


def test_repeated_flaps_both_directions_scripted():
    """Several finite outages in sequence via one Scenario: the session
    fails over and (with the primary back) still finishes cleanly."""
    sim, topo, cstack, sstack = make_faulty_net()
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 4 << 20)
    topo.flap_path(0, at=1.0, duration=0.8)
    topo.flap_path(1, at=4.0, duration=0.8)
    sim.run(until=30)
    assert done, "transfer never completed"
    assert bytes(received) == payload


def test_scenario_failover_run_is_seed_reproducible():
    """The scripted-flap failover run is bit-for-bit reproducible: the
    same seed gives identical completion times and link stats."""

    def run():
        sim, topo, cstack, sstack = make_faulty_net()
        client, sessions, payload, received, done = download_setup(
            sim, topo, cstack, sstack, 1 << 20)
        topo.flap_path(0, at=0.5, duration=1.0)
        sim.run(until=20)
        assert done and bytes(received) == payload
        stats = [
            (link.stats.tx_packets, link.stats.dropped_packets,
             dict(link.stats.drop_reasons))
            for p in topo.paths for link in (p.c2s, p.s2c)
        ]
        return done[0], stats

    assert run() == run()
