"""TCPLS sessions over the real AEAD suites (small transfers --
pure-Python crypto is slow; bulk experiments use the null-tag cipher)."""

import pytest

from helpers import PSK, connect_tcpls, make_net, tcpls_pair


@pytest.mark.parametrize("suite", ["chacha20poly1305", "aes128gcm"])
def test_session_end_to_end_with_real_aead(suite):
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        client_kwargs={"cipher_names": (suite,)},
        server_kwargs={"cipher_names": (suite,)},
    )
    conn = connect_tcpls(sim, topo, client)
    assert client.conns[0].tls.negotiated_cipher == suite
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(conn)
    payload = bytes(range(256)) * 8  # 2 KiB is plenty for pure Python
    stream.send(payload)
    sim.run(until=sim.now + 1)
    assert bytes(received) == payload


@pytest.mark.parametrize("suite", ["chacha20poly1305"])
def test_stream_demux_tag_trial_with_real_aead(suite):
    """The implicit-stream-id trial decryption works identically with a
    real Encrypt-then-MAC AEAD."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        client_kwargs={"cipher_names": (suite,)},
        server_kwargs={"cipher_names": (suite,)},
    )
    conn = connect_tcpls(sim, topo, client)
    per_stream = {}
    sessions[0].on_stream_data = lambda st: per_stream.setdefault(
        st.stream_id, bytearray()).extend(st.recv())
    streams = [client.create_stream(conn) for _ in range(3)]
    for index, stream in enumerate(streams):
        stream.send(bytes([index]) * 600)
    sim.run(until=sim.now + 1)
    for index, stream in enumerate(streams):
        assert bytes(per_stream[stream.stream_id]) == bytes([index]) * 600
    assert sessions[0].stats["demux_drops"] == 0


def test_cipher_mismatch_fails_cleanly():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        client_kwargs={"cipher_names": ("aes128gcm",),
                       "fallback_retry": False},
        server_kwargs={"cipher_names": ("chacha20poly1305",)},
    )
    failures = []
    client.on_conn_failed = lambda c, r: failures.append(r)
    p = topo.path(0)
    from repro.net.address import Endpoint

    client.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=2)
    assert not client.ready
