"""Zero-copy receive framing (Sec. 3.1)."""

import pytest

from repro.core.record import (
    RECORD_TYPE_STREAM_DATA,
    decode_inner,
    encode_inner,
)


def test_zero_copy_payload_is_a_view_over_the_buffer():
    payload = b"Z" * 4096
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, payload, b"\x00")
    record = decode_inner(inner, zero_copy=True)
    assert isinstance(record.payload, memoryview)
    assert bytes(record.payload) == payload
    # Same backing memory: mutating the source shows through the view.
    buffer = bytearray(inner)
    record2 = decode_inner(buffer, zero_copy=True)
    buffer[0] = ord("!")
    assert record2.payload[0] == ord("!")


def test_default_decode_copies():
    inner = bytearray(encode_inner(RECORD_TYPE_STREAM_DATA, b"abc"))
    record = decode_inner(inner)
    inner[0] = ord("X")
    assert bytes(record.payload) == b"abc"  # unaffected: a copy


def test_zero_copy_and_copy_agree():
    payload = bytes(range(256))
    control = b"\x01" + b"\x07" * 8
    inner = encode_inner(0x30, payload, control)
    a = decode_inner(inner)
    b = decode_inner(inner, zero_copy=True)
    assert bytes(a.payload) == bytes(b.payload)
    assert a.control == b.control
    assert a.record_type == b.record_type
