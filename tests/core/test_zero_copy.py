"""Zero-copy receive framing (Sec. 3.1)."""

import pytest

from repro.core.record import (
    RECORD_TYPE_STREAM_DATA,
    decode_inner,
    encode_inner,
)


def test_zero_copy_payload_is_a_view_over_the_buffer():
    payload = b"Z" * 4096
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, payload, b"\x00")
    record = decode_inner(inner, zero_copy=True)
    assert isinstance(record.payload, memoryview)
    assert bytes(record.payload) == payload
    # Same backing memory: mutating the source shows through the view.
    buffer = bytearray(inner)
    record2 = decode_inner(buffer, zero_copy=True)
    buffer[0] = ord("!")
    assert record2.payload[0] == ord("!")


def test_default_decode_copies():
    inner = bytearray(encode_inner(RECORD_TYPE_STREAM_DATA, b"abc"))
    record = decode_inner(inner)
    inner[0] = ord("X")
    assert bytes(record.payload) == b"abc"  # unaffected: a copy


def test_zero_copy_and_copy_agree():
    payload = bytes(range(256))
    control = b"\x01" + b"\x07" * 8
    inner = encode_inner(0x30, payload, control)
    a = decode_inner(inner)
    b = decode_inner(inner, zero_copy=True)
    assert bytes(a.payload) == bytes(b.payload)
    assert a.control == b.control
    assert a.record_type == b.record_type


def test_encode_inner_accepts_memoryview_payload():
    backing = bytearray(b"stream-bytes-from-the-app" * 10)
    view = memoryview(backing)[:100]
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, view, b"\x00")
    assert inner == encode_inner(RECORD_TYPE_STREAM_DATA,
                                 bytes(backing[:100]), b"\x00")
    view.release()          # encode_inner held no reference
    del backing[:50]        # and the bytearray can resize again


def test_send_buffer_peek_flows_copy_free_into_a_segment():
    """SendBuffer.peek -> Segment payload without an intermediate copy
    (the zero-copy send path the TCP layer rides)."""
    from repro.tcp.buffers import SendBuffer
    from repro.tcp.segment import Segment

    app_bytes = bytes(range(256)) * 8
    buf = SendBuffer(base_seq=1000)
    buf.write(app_bytes)
    payload = buf.peek(1100, 512)
    segment = Segment(1, 2, seq=1100, payload=payload)
    assert isinstance(segment.payload, memoryview)
    assert segment.payload.obj is app_bytes   # still the app's object
    assert bytes(segment.payload) == app_bytes[100:612]


def test_segment_replace_keeps_zero_copy_payload():
    from repro.tcp.segment import Segment

    data = b"q" * 128
    seg = Segment(1, 2, seq=5, payload=memoryview(data))
    clone = seg.replace(seq=6)
    assert bytes(clone.payload) == data


def test_corruption_fault_handles_memoryview_payloads():
    """BitCorruption rewrites payload bytes; it must cope with segments
    carrying zero-copy views."""
    from repro.net.faults import BitCorruption
    from repro.net.packet import Packet
    from repro.tcp.segment import Segment

    class FakeLink:
        def __init__(self):
            self.sim = None

    fault = BitCorruption(rate=1.0, mode="deliver", seed=3)
    fault.rng = fault._seeded_rng(3)
    data = bytes(range(64))
    seg = Segment(1, 2, seq=0, payload=memoryview(data))
    pkt = Packet(None, None, "tcp", seg)
    assert fault.filter(pkt, now=0.0) is None   # corrupted in place
    corrupted = bytes(pkt.payload.payload)
    assert corrupted != data
    assert sum(a != b for a, b in zip(corrupted, data)) == 1
