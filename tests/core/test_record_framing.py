"""TCPLS record framing: end-of-record control data."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import record as rec


def test_roundtrip_no_control():
    inner = rec.encode_inner(rec.RECORD_TYPE_STREAM_DATA, b"payload")
    out = rec.decode_inner(inner)
    assert out.record_type == rec.RECORD_TYPE_STREAM_DATA
    assert out.payload == b"payload"
    assert out.control == b""


def test_control_data_is_at_the_end():
    """The zero-copy design decision of Sec. 3.1: payload first, control
    fields after, type byte last."""
    inner = rec.encode_inner(rec.RECORD_TYPE_STREAM_DATA, b"DATA",
                             control=b"CTRL")
    assert inner.startswith(b"DATA")
    assert inner[-1] == rec.RECORD_TYPE_STREAM_DATA
    assert inner[-2] == len(b"CTRL")
    assert inner[4:8] == b"CTRL"
    # A zero-copy receiver just truncates: payload is a prefix.
    out = rec.decode_inner(inner)
    assert inner[:len(out.payload)] == out.payload


def test_control_length_limit():
    with pytest.raises(ValueError):
        rec.encode_inner(rec.RECORD_TYPE_CONTROL, b"", b"c" * 256)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError):
        rec.decode_inner(b"")
    with pytest.raises(ValueError):
        rec.decode_inner(bytes([200, rec.RECORD_TYPE_ACK]))  # bad ctrl len


def test_stream_control_coupled_roundtrip():
    control = rec.encode_stream_control(rec.FLAG_COUPLED, coupled_seq=12345)
    flags, seq = rec.decode_stream_control(control)
    assert flags & rec.FLAG_COUPLED
    assert seq == 12345


def test_stream_control_requires_seq_when_coupled():
    with pytest.raises(ValueError):
        rec.encode_stream_control(rec.FLAG_COUPLED)


def test_stream_control_plain():
    flags, seq = rec.decode_stream_control(
        rec.encode_stream_control(rec.FLAG_FIN)
    )
    assert flags == rec.FLAG_FIN and seq is None


def test_ack_codec():
    entries = [(1, 100), (0xFFFF0001, 2**40)]
    assert rec.decode_ack(rec.encode_ack(entries)) == entries


def test_sync_codec():
    payload = rec.encode_sync(2, [(1, 17), (3, 0)])
    failed, entries = rec.decode_sync(payload)
    assert failed == 2 and entries == [(1, 17), (3, 0)]


def test_tcp_option_codec():
    kind, data = rec.decode_tcp_option(rec.encode_tcp_option(28, b"\x01"))
    assert kind == 28 and data == b"\x01"


def test_ebpf_chunk_codec():
    payload = rec.encode_ebpf_chunk(3, 1, 4, b"code")
    assert rec.decode_ebpf_chunk(payload) == (3, 1, 4, b"code")


@settings(max_examples=100)
@given(st.binary(max_size=2000), st.binary(max_size=255),
       st.integers(0, 255))
def test_property_inner_roundtrip(payload, control, record_type):
    inner = rec.encode_inner(record_type, payload, control)
    out = rec.decode_inner(inner)
    assert (out.record_type, out.payload, out.control) == (
        record_type, payload, control)
