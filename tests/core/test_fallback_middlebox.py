"""Sec. 5.2 behaviours: fallback to TLS, middlebox traversal."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net.address import Endpoint
from repro.net.middlebox import (
    NAT,
    OptionStrippingFirewall,
    Resegmenter,
    StatefulFirewall,
)


def test_plain_tls_server_triggers_implicit_fallback():
    """Server without TCPLS: the ServerHello simply omits the TCPLS
    extension and the client continues as TLS (stream 0 only)."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack, server_kwargs={"enable_tcpls": False})
    connect_tcpls(sim, topo, client)
    assert client.ready
    assert not client.tcpls_enabled
    assert client.cookies == []
    with pytest.raises(RuntimeError):
        client.join(topo.path(1).client_addr)


def test_legacy_server_rst_triggers_explicit_fallback():
    """Server aborting on unknown extensions: client retries a plain
    TLS handshake and connects."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack,
        server_kwargs={"strict_extensions": True, "enable_tcpls": False})
    ready = []
    client.on_ready = lambda s: ready.append(sim.now)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=3)
    assert ready, "fallback retry never connected"
    assert client.fell_back
    assert not client.tcpls_enabled


def test_fallback_session_still_carries_data():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(
        sim, topo, cstack, sstack, server_kwargs={"enable_tcpls": False})
    connect_tcpls(sim, topo, client)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    # Stream 0 (the TLS application-data context) still works.
    stream0 = client.conns[0].control_stream
    from repro.core import record as rec

    client._send_typed(client.conns[0], rec.RECORD_TYPE_APPDATA,
                       b"plain tls data", stream=stream0)
    sim.run(until=sim.now + 0.5)
    assert bytes(received) == b"plain tls data"


def test_tcpls_through_stateful_firewall():
    sim, topo, cstack, sstack = make_net()
    p = topo.path(0)
    p.c2s.add_middlebox(StatefulFirewall(sim=sim))
    p.s2c.add_middlebox(StatefulFirewall(sim=sim))
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    assert client.tcpls_enabled  # handshake unimpeded (Sec. 5.2)


def test_tcpls_through_option_stripping_firewall():
    """TCPLS control data lives in the payload; an option-stripping
    middlebox cannot touch it."""
    sim, topo, cstack, sstack = make_net()
    p = topo.path(0)
    p.c2s.add_middlebox(OptionStrippingFirewall())
    p.s2c.add_middlebox(OptionStrippingFirewall())
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    client.set_user_timeout(conn, 2.0)   # conveyed in a record: survives
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(conn)
    stream.send(b"through the firewall" * 100)
    sim.run(until=sim.now + 2)
    assert bytes(received) == b"through the firewall" * 100
    assert sessions[0].conns[0].tcp.user_timeout == pytest.approx(2.0)


def test_tcpls_through_nat():
    sim, topo, cstack, sstack = make_net()
    from repro.net.address import IPAddress

    nat = NAT(IPAddress("198.51.100.7"))
    p = topo.path(0)
    p.c2s.add_middlebox(nat.outbound)
    p.s2c.add_middlebox(nat.inbound)
    # The server replies to the NAT's public address; route it back.
    topo.server.add_route(IPAddress("198.51.100.7"),
                          topo.server.interfaces[0])
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[0])
    stream.send(b"natted" * 1000)
    sim.run(until=sim.now + 2)
    assert bytes(received) == b"natted" * 1000
    # The server really saw the rewritten address.
    assert str(sessions[0].conns[0].tcp.remote.addr) == "198.51.100.7"


def test_tcpls_through_resegmenter():
    """Class (vi) interference: records are reassembled from the byte
    stream, so resegmentation is invisible to TCPLS."""
    sim, topo, cstack, sstack = make_net()
    topo.path(0).c2s.add_middlebox(Resegmenter(chunk=536))
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    connect_tcpls(sim, topo, client)
    received = bytearray()
    sessions[0].on_stream_data = lambda st: received.extend(st.recv())
    stream = client.create_stream(client.conns[0])
    stream.send(b"resegment-me" * 2000)
    sim.run(until=sim.now + 3)
    assert bytes(received) == b"resegment-me" * 2000
    assert sessions[0].stats["demux_drops"] == 0
