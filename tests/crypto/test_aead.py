"""AEAD interface invariants across all cipher suites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import (
    Aes128Gcm,
    AeadAuthenticationError,
    Chacha20Poly1305,
    NullTagCipher,
    get_cipher,
)

CIPHERS = [Chacha20Poly1305, Aes128Gcm, NullTagCipher]


def make(cipher_cls):
    return cipher_cls(bytes(range(cipher_cls.key_size)))


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_seal_open_roundtrip(cipher_cls):
    cipher = make(cipher_cls)
    nonce = b"\x07" * 12
    sealed = cipher.seal(nonce, b"payload", b"aad")
    assert len(sealed) == len(b"payload") + cipher.tag_size
    assert cipher.open(nonce, sealed, b"aad") == b"payload"


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_wrong_nonce_rejected(cipher_cls):
    cipher = make(cipher_cls)
    sealed = cipher.seal(b"\x00" * 12, b"data")
    with pytest.raises(AeadAuthenticationError):
        cipher.open(b"\x01" * 12, sealed)


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_wrong_aad_rejected(cipher_cls):
    cipher = make(cipher_cls)
    sealed = cipher.seal(b"\x00" * 12, b"data", b"aad-a")
    with pytest.raises(AeadAuthenticationError):
        cipher.open(b"\x00" * 12, sealed, b"aad-b")


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_wrong_key_rejected(cipher_cls):
    sealed = make(cipher_cls).seal(b"\x00" * 12, b"data")
    other = cipher_cls(b"\xFF" * cipher_cls.key_size)
    with pytest.raises(AeadAuthenticationError):
        other.open(b"\x00" * 12, sealed)


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_bitflip_rejected(cipher_cls):
    cipher = make(cipher_cls)
    sealed = bytearray(cipher.seal(b"\x00" * 12, b"some data here"))
    sealed[3] ^= 0x01
    with pytest.raises(AeadAuthenticationError):
        cipher.open(b"\x00" * 12, bytes(sealed))


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_verify_tag_matches_open(cipher_cls):
    """verify_tag is the cheap trial TCPLS demux relies on: it must
    accept exactly what open accepts."""
    cipher = make(cipher_cls)
    nonce = b"\x05" * 12
    sealed = cipher.seal(nonce, b"record", b"hdr")
    assert cipher.verify_tag(nonce, sealed, b"hdr")
    assert not cipher.verify_tag(b"\x06" * 12, sealed, b"hdr")
    assert not cipher.verify_tag(nonce, sealed, b"other")
    assert not cipher.verify_tag(nonce, sealed[:-1] + b"\x00", b"hdr")


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_short_record_rejected(cipher_cls):
    cipher = make(cipher_cls)
    with pytest.raises(AeadAuthenticationError):
        cipher.open(b"\x00" * 12, b"tiny")
    assert not cipher.verify_tag(b"\x00" * 12, b"tiny")


@pytest.mark.parametrize("cipher_cls", CIPHERS)
def test_bad_key_size_rejected(cipher_cls):
    with pytest.raises(ValueError):
        cipher_cls(b"short")


def test_registry():
    assert get_cipher("null-tag") is NullTagCipher
    assert get_cipher("aes128gcm") is Aes128Gcm
    assert get_cipher("chacha20poly1305") is Chacha20Poly1305
    with pytest.raises(ValueError):
        get_cipher("rot13")


@settings(max_examples=50)
@given(st.binary(max_size=512), st.binary(max_size=64),
       st.binary(min_size=12, max_size=12))
def test_property_nulltag_roundtrip(payload, aad, nonce):
    cipher = NullTagCipher(b"k" * 32)
    sealed = cipher.seal(nonce, payload, aad)
    assert cipher.open(nonce, sealed, aad) == payload


@settings(max_examples=15)
@given(st.binary(max_size=96), st.binary(max_size=24),
       st.binary(min_size=12, max_size=12))
def test_property_chacha_roundtrip(payload, aad, nonce):
    cipher = Chacha20Poly1305(b"K" * 32)
    sealed = cipher.seal(nonce, payload, aad)
    assert cipher.open(nonce, sealed, aad) == payload
