"""Property tests: every crypto fast path is byte-identical to the
retained reference implementation.

The hot paths introduced by the performance pass (T-table AES, batched
CTR keystream, table-driven GHASH, the inlined and SWAR-batched ChaCha20
cores) all keep their original implementations as oracles; Hypothesis
drives random keys/nonces/AAD/lengths through both and demands equality.
A deterministic 65536-byte case covers the large-batch paths explicitly.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import Aes128Gcm, Chacha20Poly1305
from repro.crypto.aes import Aes128
from repro.crypto.chacha20 import (
    _SWAR_MIN_BLOCKS,
    chacha20_block,
    chacha20_block_reference,
    chacha20_encrypt,
)
from repro.crypto.gcm import Ghash
from repro.crypto.poly1305 import P1305, poly1305_mac

KEY16 = st.binary(min_size=16, max_size=16)
KEY32 = st.binary(min_size=32, max_size=32)
NONCE12 = st.binary(min_size=12, max_size=12)
BLOCK16 = st.binary(min_size=16, max_size=16)
DATA = st.binary(max_size=2048)
COUNTER = st.integers(min_value=0, max_value=0xFFFFFFFF)


def poly1305_reference(key, message):
    """Naive RFC 8439 Poly1305 (chunk concatenation, per-chunk pad)."""
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for i in range(0, len(message), 16):
        chunk = message[i:i + 16] + b"\x01"
        acc = (acc + int.from_bytes(chunk, "little")) * r % P1305
    return ((acc + s) & ((1 << 128) - 1)).to_bytes(16, "little")


@given(key=KEY16, block=BLOCK16)
def test_aes_block_fast_matches_reference(key, block):
    aes = Aes128(key)
    assert aes.encrypt_block(block) == aes.encrypt_block_reference(block)


@given(key=KEY16, prefix=NONCE12, counter=COUNTER,
       nblocks=st.integers(min_value=1, max_value=40))
@settings(max_examples=40, deadline=None)
def test_aes_ctr_keystream_matches_reference(key, prefix, counter, nblocks):
    aes = Aes128(key)
    got = aes.ctr_keystream(prefix, counter, nblocks)
    want = b"".join(
        aes.encrypt_block_reference(
            prefix + ((counter + i) & 0xFFFFFFFF).to_bytes(4, "big"))
        for i in range(nblocks)
    )
    assert got == want


@given(key=KEY16, aad=DATA, ciphertext=DATA)
@settings(max_examples=60, deadline=None)
def test_ghash_tables_match_per_bit_reference(key, aad, ciphertext):
    ghash = Ghash(Aes128(key).encrypt_block(b"\x00" * 16))
    assert ghash.digest(aad, ciphertext) == \
        ghash.digest_reference(aad, ciphertext)


@given(key=KEY32, counter=COUNTER, nonce=NONCE12)
def test_chacha20_block_fast_matches_reference(key, counter, nonce):
    assert chacha20_block(key, counter, nonce) == \
        chacha20_block_reference(key, counter, nonce)


@given(key=KEY32, counter=st.integers(min_value=0, max_value=0xFFFFFF00),
       nonce=NONCE12, plaintext=DATA)
@settings(max_examples=60, deadline=None)
def test_chacha20_encrypt_matches_reference_composition(
        key, counter, nonce, plaintext):
    n = len(plaintext)
    stream = b"".join(
        chacha20_block_reference(key, counter + i, nonce)
        for i in range((n + 63) // 64)
    )[:n]
    want = bytes(p ^ k for p, k in zip(plaintext, stream))
    assert chacha20_encrypt(key, counter, nonce, plaintext) == want


@given(key=KEY32, message=DATA)
@settings(max_examples=60, deadline=None)
def test_poly1305_matches_reference(key, message):
    assert poly1305_mac(key, message) == poly1305_reference(key, message)


@given(key=KEY32, nonce=NONCE12, plaintext=DATA, aad=DATA)
@settings(max_examples=40, deadline=None)
def test_chacha20poly1305_roundtrip(key, nonce, plaintext, aad):
    aead = Chacha20Poly1305(key)
    sealed = aead.seal(nonce, plaintext, aad)
    assert aead.verify_tag(nonce, sealed, aad)
    assert aead.open(nonce, sealed, aad) == plaintext


@given(key=KEY16, nonce=NONCE12, plaintext=DATA, aad=DATA)
@settings(max_examples=40, deadline=None)
def test_aes128gcm_roundtrip(key, nonce, plaintext, aad):
    aead = Aes128Gcm(key)
    sealed = aead.seal(nonce, plaintext, aad)
    assert aead.verify_tag(nonce, sealed, aad)
    assert aead.open(nonce, sealed, aad) == plaintext


def test_large_batch_paths_match_references_65536():
    """One deterministic 65536-byte case: exercises the SWAR ChaCha20
    batch, the (optionally numpy) CTR batch and table GHASH at a size
    far beyond what Hypothesis generates."""
    data = bytes(i * 131 % 251 for i in range(65536))
    key32 = bytes(range(32))
    key16 = bytes(range(16))
    nonce = bytes(range(12))

    stream = b"".join(
        chacha20_block_reference(key32, 1 + i, nonce)
        for i in range(len(data) // 64)
    )
    want = bytes(p ^ k for p, k in zip(data, stream))
    assert chacha20_encrypt(key32, 1, nonce, data) == want
    assert len(data) // 64 >= _SWAR_MIN_BLOCKS  # SWAR path was taken

    aes = Aes128(key16)
    nblocks = len(data) // 16
    assert aes.ctr_keystream(nonce, 2, nblocks) == b"".join(
        aes.encrypt_block_reference(nonce + (2 + i).to_bytes(4, "big"))
        for i in range(nblocks)
    )

    ghash = Ghash(aes.encrypt_block(b"\x00" * 16))
    assert ghash.digest(b"hdr", data) == ghash.digest_reference(b"hdr", data)

    for aead in (Chacha20Poly1305(key32), Aes128Gcm(key16)):
        sealed = aead.seal(nonce, data, b"hdr")
        assert aead.open(nonce, sealed, b"hdr") == data


def test_ctr_counter_wraps_modulo_2_32():
    aes = Aes128(bytes(range(16)))
    prefix = b"\xAA" * 12
    got = aes.ctr_keystream(prefix, 0xFFFFFFFE, 12)
    want = b"".join(
        aes.encrypt_block_reference(
            prefix + ((0xFFFFFFFE + i) & 0xFFFFFFFF).to_bytes(4, "big"))
        for i in range(12)
    )
    assert got == want


def test_swar_counter_wraps_modulo_2_32():
    key = bytes(range(32))
    nonce = b"\x07" * 12
    counter = 0xFFFFFFFD
    nblocks = _SWAR_MIN_BLOCKS + 4
    data = bytes(64 * nblocks)
    stream = b"".join(
        chacha20_block_reference(key, (counter + i) & 0xFFFFFFFF, nonce)
        for i in range(nblocks)
    )
    assert chacha20_encrypt(key, counter, nonce, data) == stream
