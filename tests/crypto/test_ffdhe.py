"""FFDHE-2048 key exchange."""

import random

import pytest

from repro.crypto.ffdhe import FFDHE2048, DHKeyPair


def test_shared_secret_agreement():
    rng = random.Random(3)
    alice = FFDHE2048.generate(rng)
    bob = FFDHE2048.generate(rng)
    z_alice = FFDHE2048.shared_secret(alice.private, bob.public)
    z_bob = FFDHE2048.shared_secret(bob.private, alice.public)
    assert z_alice == z_bob
    assert len(z_alice) == 256  # left-padded to the group length


def test_different_pairs_different_secrets():
    rng = random.Random(4)
    a, b, c = (FFDHE2048.generate(rng) for _ in range(3))
    assert FFDHE2048.shared_secret(a.private, b.public) != \
        FFDHE2048.shared_secret(a.private, c.public)


def test_public_bytes_roundtrip():
    rng = random.Random(5)
    pair = FFDHE2048.generate(rng)
    assert DHKeyPair.public_from_bytes(pair.public_bytes()) == pair.public


def test_degenerate_peer_values_rejected():
    rng = random.Random(6)
    pair = FFDHE2048.generate(rng)
    for bad in (0, 1, FFDHE2048.p - 1, FFDHE2048.p):
        with pytest.raises(ValueError):
            FFDHE2048.shared_secret(pair.private, bad)


def test_public_bytes_length_enforced():
    with pytest.raises(ValueError):
        DHKeyPair.public_from_bytes(b"\x01" * 255)


def test_prime_is_the_rfc7919_group():
    # Spot-check the well-known prefix/suffix of the ffdhe2048 prime.
    hex_p = "%x" % FFDHE2048.p
    assert hex_p.startswith("ffffffffffffffffadf85458a2bb4a9a")
    assert hex_p.endswith("ffffffffffffffff")
    assert FFDHE2048.g == 2
