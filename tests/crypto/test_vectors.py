"""Published test vectors: RFC 8439 (ChaCha20/Poly1305), FIPS 197 /
NIST GCM (AES), RFC 5869 (HKDF), RFC 8448-style expand-label."""

from repro.crypto.aes import Aes128
from repro.crypto.chacha20 import chacha20_block, chacha20_encrypt
from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.crypto.poly1305 import poly1305_mac


def test_chacha20_block_rfc8439_2_3_2():
    key = bytes(range(32))
    nonce = bytes.fromhex("000000090000004a00000000")
    block = chacha20_block(key, 1, nonce)
    assert block.hex() == (
        "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    )


def test_chacha20_encrypt_rfc8439_2_4_2():
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    ciphertext = chacha20_encrypt(key, 1, nonce, plaintext)
    assert ciphertext[:32].hex() == (
        "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
    )
    # Decryption is the same operation.
    assert chacha20_encrypt(key, 1, nonce, ciphertext) == plaintext


def test_poly1305_rfc8439_2_5_2():
    key = bytes.fromhex(
        "85d6be7857556d337f4452fe42d506a8"
        "0103808afb0db2fd4abff6af4149f51b"
    )
    tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
    assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"


def test_aes128_fips197():
    aes = Aes128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    out = aes.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
    assert out.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_aes_gcm_nist_case_3():
    gcm = AesGcm(bytes.fromhex("feffe9928665731c6d6a8f9467308308"))
    nonce = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
    )
    out = gcm.encrypt(nonce, plaintext)
    assert out[:64].hex() == (
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    )
    assert out[64:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"
    assert gcm.decrypt(nonce, out) == plaintext


def test_aes_gcm_nist_case_4_with_aad():
    gcm = AesGcm(bytes.fromhex("feffe9928665731c6d6a8f9467308308"))
    nonce = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
    )
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    out = gcm.encrypt(nonce, plaintext, aad)
    assert out[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert gcm.decrypt(nonce, out, aad) == plaintext
    assert gcm.decrypt(nonce, out, b"wrong") is None


def test_hkdf_rfc5869_case_1():
    ikm = b"\x0b" * 22
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )


def test_hkdf_rfc5869_case_2_long():
    ikm = bytes(range(0x50))
    salt = bytes(range(0x60, 0xB0))
    info = bytes(range(0xB0, 0x100))
    prk = hkdf_extract(salt, ikm)
    okm = hkdf_expand(prk, info, 82)
    assert okm.hex() == (
        "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
        "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
        "cc30c58179ec3e87c14c01d5c1f3434f1d87"
    )


def test_hkdf_expand_label_structure():
    """Expand-Label output is deterministic and label-separated."""
    secret = b"\x01" * 32
    a = hkdf_expand_label(secret, b"key", b"", 16)
    b = hkdf_expand_label(secret, b"iv", b"", 16)
    c = hkdf_expand_label(secret, b"key", b"ctx", 16)
    assert len(a) == 16 and a != b and a != c
    assert hkdf_expand_label(secret, b"key", b"", 16) == a
