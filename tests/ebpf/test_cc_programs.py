"""Bytecode congestion controllers behind the native CC interface."""

import pytest

from repro.ebpf import assemble, verify
from repro.ebpf.cc_hooks import EbpfCongestionControl, SSTHRESH_INF
from repro.ebpf.programs import CUBIC_ASM, RENO_ASM, cubic_bytecode, \
    reno_bytecode
from repro.tcp.congestion import Cubic, NewReno

MSS = 1460


def test_programs_assemble_and_verify():
    for source in (RENO_ASM, CUBIC_ASM):
        verify(assemble(source))


def test_from_bytecode_verifies():
    cc = EbpfCongestionControl.from_bytecode(MSS, reno_bytecode(), "reno")
    assert cc.name == "ebpf:reno"


def test_malformed_bytecode_rejected():
    with pytest.raises(Exception):
        EbpfCongestionControl.from_bytecode(MSS, b"\x00" * 16)


def drive(cc, acks, rtt=0.02, start=0.0):
    now = start
    for _ in range(acks):
        now += rtt
        cc.on_ack(MSS, rtt, now, int(cc.cwnd))
    return now


class TestEbpfReno:
    def test_slow_start_growth(self):
        cc = EbpfCongestionControl.from_bytecode(MSS, reno_bytecode())
        before = cc.cwnd
        cc.on_ack(MSS, 0.02, 0.02, 0)
        assert cc.cwnd == before + MSS

    def test_loss_halves_and_rto_collapses(self):
        cc = EbpfCongestionControl.from_bytecode(MSS, reno_bytecode())
        cc.cwnd = 100 * MSS
        cc.on_loss(0.0)
        assert cc.cwnd == pytest.approx(50 * MSS, abs=MSS)
        cc.cwnd = 100 * MSS
        cc.on_rto(0.0)
        assert cc.cwnd == MSS

    def test_matches_native_reno_in_avoidance(self):
        ebpf = EbpfCongestionControl.from_bytecode(MSS, reno_bytecode())
        native = NewReno(MSS)
        for cc in (ebpf, native):
            cc.cwnd = 20 * MSS
            cc.ssthresh = 20 * MSS
        drive(ebpf, 200)
        now = 0.0
        for _ in range(200):
            now += 0.02
            native.on_ack(MSS, 0.02, now, int(native.cwnd))
        assert ebpf.cwnd == pytest.approx(native.cwnd, rel=0.1)


class TestEbpfCubic:
    def test_beta_decrease(self):
        cc = EbpfCongestionControl.from_bytecode(MSS, cubic_bytecode())
        cc.cwnd = 100 * MSS
        cc.on_loss(1.0)
        assert cc.cwnd == pytest.approx(70 * MSS, rel=0.02)

    def test_recovers_toward_w_max_like_native(self):
        """The bytecode CUBIC's window curve must track the native
        implementation's within ~20% over an epoch."""
        ebpf = EbpfCongestionControl.from_bytecode(MSS, cubic_bytecode())
        native = Cubic(MSS)
        for cc in (ebpf, native):
            cc.cwnd = 100 * MSS
            cc.on_loss(0.0)
        now_e = drive(ebpf, 300, rtt=0.02)
        now = 0.0
        for _ in range(300):
            now += 0.02
            native.on_ack(MSS, 0.02, now, int(native.cwnd))
        assert ebpf.cwnd == pytest.approx(native.cwnd, rel=0.2)

    def test_scratch_state_persists(self):
        cc = EbpfCongestionControl.from_bytecode(MSS, cubic_bytecode())
        cc.cwnd = 50 * MSS
        cc.on_loss(0.0)
        w_max = cc._scratch[0]
        assert w_max == 50 * MSS
        drive(cc, 10, start=1.0)
        assert cc._scratch[0] == w_max  # w_max survives invocations

    def test_ssthresh_inf_encoding(self):
        cc = EbpfCongestionControl.from_bytecode(MSS, cubic_bytecode())
        assert cc.ssthresh == float("inf")
        cc.on_loss(0.0)
        assert cc.ssthresh < SSTHRESH_INF
