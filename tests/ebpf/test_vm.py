"""eBPF assembler, verifier and interpreter."""

import pytest

from repro.ebpf import (
    AssemblyError,
    EbpfVm,
    ExecutionError,
    VerificationError,
    assemble,
    decode_program,
    encode_program,
    verify,
)
from repro.ebpf.vm import _cbrt_u64


def run(source, ctx=b"", budget=100_000):
    program = assemble(source)
    verify(program)
    vm = EbpfVm(program, instruction_budget=budget)
    buffer = bytearray(ctx)
    result = vm.run(buffer)
    return result, buffer


class TestAssemblerVm:
    def test_mov_and_arithmetic(self):
        result, _ = run("""
            mov r0, 7
            add r0, 5
            mul r0, 3
            sub r0, 6
            div r0, 2
            exit
        """)
        assert result == 15

    def test_register_operands(self):
        result, _ = run("""
            mov r1, 10
            mov r2, 4
            mov r0, r1
            sub r0, r2
            exit
        """)
        assert result == 6

    def test_lddw_64bit_immediate(self):
        result, _ = run("""
            lddw r0, 0x1_0000_0000
            add r0, 2
            exit
        """)
        assert result == (1 << 32) + 2

    def test_bitwise_and_shifts(self):
        result, _ = run("""
            mov r0, 0xF0
            or  r0, 0x0F
            and r0, 0x3C
            lsh r0, 2
            rsh r0, 1
            xor r0, 1
            exit
        """)
        assert result == ((0x3C << 2) >> 1) ^ 1

    def test_unsigned_wraparound(self):
        result, _ = run("""
            mov r0, 0
            sub r0, 1
            exit
        """)
        assert result == (1 << 64) - 1

    def test_signed_comparisons(self):
        result, _ = run("""
            mov r0, 0
            sub r0, 5        ; r0 = -5
            jsgt r0, 0, bad
            mov r0, 1
            exit
        bad:
            mov r0, 2
            exit
        """)
        assert result == 1

    def test_conditional_jump_and_labels(self):
        result, _ = run("""
            mov r1, 3
            jeq r1, 3, yes
            mov r0, 0
            exit
        yes:
            mov r0, 42
            exit
        """)
        assert result == 42

    def test_context_load_store(self):
        ctx = (100).to_bytes(8, "little") + bytes(8)
        result, buffer = run("""
            ldxdw r2, [r1+0]
            mul r2, 2
            stxdw [r1+8], r2
            mov r0, 0
            exit
        """, ctx)
        assert int.from_bytes(buffer[8:16], "little") == 200

    def test_stack_access(self):
        result, _ = run("""
            mov r2, 77
            stxdw [r10-8], r2
            ldxdw r0, [r10-8]
            exit
        """)
        assert result == 77

    def test_byte_sized_memory_ops(self):
        ctx = bytes([0xAB, 0, 0, 0])
        result, buffer = run("""
            ldxb r0, [r1+0]
            stxb [r1+1], r0
            exit
        """, ctx)
        assert buffer[1] == 0xAB

    def test_helper_call_cbrt(self):
        result, _ = run("""
            lddw r1, 1000000
            call cbrt
            exit
        """)
        assert result == 100

    def test_division_by_zero_register_faults(self):
        program = assemble("""
            mov r0, 1
            mov r2, 0
            div r0, r2
            exit
        """)
        verify(program)  # register div can't be checked statically
        with pytest.raises(ExecutionError):
            EbpfVm(program).run(bytearray())

    def test_out_of_bounds_context_access_faults(self):
        program = assemble("""
            ldxdw r0, [r1+128]
            exit
        """)
        verify(program)
        with pytest.raises(ExecutionError):
            EbpfVm(program).run(bytearray(16))

    def test_instruction_budget(self):
        program = assemble("""
        loop:
            ja loop
        """ + "    exit\n")
        with pytest.raises(ExecutionError):
            EbpfVm(program, instruction_budget=100).run(bytearray())


class TestAssemblerErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r0, 1\nexit")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("mov r11, 1\nexit")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError):
            assemble("ja nowhere\nexit")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nexit")


class TestVerifier:
    def test_rejects_empty(self):
        with pytest.raises(VerificationError):
            verify([])

    def test_rejects_missing_exit(self):
        with pytest.raises(VerificationError):
            verify(assemble("mov r0, 1\nja done\ndone:\nmov r0, 2\nexit")
                   [:-1])

    def test_rejects_write_to_r10(self):
        program = assemble("mov r9, 1\nexit")
        program[0].dst = 10
        with pytest.raises(VerificationError):
            verify(program)

    def test_rejects_back_edges_by_default(self):
        program = assemble("""
        top:
            ja top
            exit
        """)
        with pytest.raises(VerificationError):
            verify(program)
        verify(program, allow_loops=True)

    def test_rejects_divide_by_zero_immediate(self):
        with pytest.raises(VerificationError):
            verify(assemble("mov r0, 4\ndiv r0, 0\nexit"))

    def test_rejects_stack_out_of_frame(self):
        with pytest.raises(VerificationError):
            verify(assemble("ldxdw r0, [r10-1024]\nexit"))
        with pytest.raises(VerificationError):
            verify(assemble("stxdw [r10+8], r0\nexit"))

    def test_rejects_unknown_helper_when_table_given(self):
        program = assemble("call 99\nexit")
        with pytest.raises(VerificationError):
            verify(program, helpers={1, 2, 3})


class TestWireFormat:
    def test_encode_decode_roundtrip(self):
        program = assemble("""
            lddw r2, 0xDEADBEEF00
            mov r0, r2
            jne r0, 0, out
            mov r0, 1
        out:
            exit
        """)
        assert decode_program(encode_program(program)) == program

    def test_encoded_size_counts_lddw_twice(self):
        program = assemble("lddw r0, 0x1_0000_0000\nexit")
        assert len(encode_program(program)) == 8 * 3

    def test_decode_rejects_misaligned(self):
        with pytest.raises(ValueError):
            decode_program(b"\x00" * 7)


def test_cbrt_exactness():
    for x in (0, 1, 7, 8, 26, 27, 10**18):
        root = _cbrt_u64(x)
        assert root ** 3 <= x
        assert (root + 1) ** 3 > x
