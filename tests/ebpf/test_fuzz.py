"""Robustness of the eBPF trust boundary against arbitrary bytecode."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import (
    EbpfVm,
    ExecutionError,
    VerificationError,
    decode_program,
    verify,
)
from repro.ebpf.cc_hooks import EbpfCongestionControl


@settings(max_examples=300)
@given(st.binary(min_size=8, max_size=256).map(
    lambda b: b[: len(b) - len(b) % 8]))
def test_property_random_bytecode_never_attaches_unsafely(data):
    """Arbitrary wire bytes either fail decoding/verification cleanly or
    produce a program the VM executes within its budget -- no crashes,
    no infinite loops, no out-of-frame memory access."""
    try:
        program = decode_program(data)
    except ValueError:
        return
    try:
        verify(program)
    except VerificationError:
        return
    vm = EbpfVm(program, instruction_budget=10_000)
    try:
        vm.run(bytearray(136))
    except ExecutionError:
        pass  # runtime faults are contained


@settings(max_examples=200)
@given(st.binary(max_size=128))
def test_property_cc_adapter_rejects_garbage(data):
    """from_bytecode either raises or yields a working controller."""
    try:
        cc = EbpfCongestionControl.from_bytecode(1460, data)
    except Exception:
        return
    cc.on_ack(1460, 0.02, 1.0, 0)
    cc.on_loss(2.0)
    assert cc.cwnd >= 1460


def test_hostile_program_cannot_touch_outside_context():
    """A verified program stays inside its sandbox even when it computes
    wild pointers at runtime."""
    from repro.ebpf import assemble
    import pytest

    program = assemble("""
        lddw r2, 0xDEADBEEF
        ldxdw r0, [r2+0]
        exit
    """)
    verify(program)  # pointer provenance is a runtime check
    with pytest.raises(ExecutionError):
        EbpfVm(program).run(bytearray(64))
