"""Shared test scaffolding: canned topologies and endpoint pairs."""

from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack
from repro.core import TcplsClient, TcplsServer

PSK = b"test-psk"


def make_net(n_paths=2, **topo_kwargs):
    """(sim, topology, client TcpStack, server TcpStack)."""
    sim = Simulator(seed=7)
    topo = build_multipath(sim, n_paths=n_paths, **topo_kwargs)
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    return sim, topo, cstack, sstack


def tcp_pair(sim, topo, cstack, sstack, port=443, path=0, cc="cubic",
             server_cc=None):
    """Establish one TCP connection; returns (client_conn, accepted_list).

    The accepted list is populated when the server accepts; run the sim
    to make that happen.
    """
    accepted = []
    sstack.listen(port, accepted.append, cc=server_cc or cc)
    p = topo.path(path)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, port),
                          cc=cc)
    return conn, accepted


def bulk_sender(conn, payload):
    """Pump `payload` through a TCP connection respecting buffer space."""
    progress = {"sent": 0}

    def pump(c):
        while progress["sent"] < len(payload) and c.send_space() > 0:
            take = int(min(65536, c.send_space()))
            n = c.send(payload[progress["sent"]:progress["sent"] + take])
            if n == 0:
                break
            progress["sent"] += n

    conn.on_established = pump
    conn.on_send_space = pump
    return progress


def bulk_receiver(sink=None):
    """on_accept callback collecting all received bytes into a bytearray."""
    received = bytearray() if sink is None else sink

    def on_accept(conn):
        conn.on_data = lambda c: received.extend(c.recv())

    return on_accept, received


def tcpls_pair(sim, topo, cstack, sstack, port=443, psk=PSK,
               client_kwargs=None, server_kwargs=None):
    """A TCPLS client/server pair; returns (client, server, sessions).

    ``sessions`` collects server-side sessions as they appear.
    """
    sessions = []
    server = TcplsServer(sim, sstack, port, psk=psk,
                         **(server_kwargs or {}))
    server.on_session = sessions.append
    client = TcplsClient(sim, cstack, psk=psk, **(client_kwargs or {}))
    return client, server, sessions


def connect_tcpls(sim, topo, client, path=0, port=443, timeout=1.0):
    """Open the primary connection and run just until the session is
    ready (leaves the clock barely past the handshake)."""
    p = topo.path(path)
    client.connect(p.client_addr, Endpoint(p.server_addr, port))
    deadline = sim.now + timeout
    while not client.ready and sim.now < deadline:
        sim.run(until=min(sim.now + 0.01, deadline))
    assert client.ready, "TCPLS session failed to become ready"
    # Let the client Finished reach the server so both sides are up.
    sim.run(until=sim.now + 0.05)
    return client.conns[0]
