"""Golden-trace regression tests for the Fig. 8 / Fig. 9 scenarios.

Under a fixed seed the scenario runs are deterministic, so the *key*
events — failover trigger, path switch, recovery — must appear in a
stable order on the bus, run after run.  Rather than pin every event
(fragile), each test asserts an ordered subsequence of load-bearing
events plus run-to-run stability of the full key-event trace.  All
invariant checkers are armed for the whole run and must stay clean
(an acceptance criterion of the tracing subsystem).
"""

import pytest

from tests.core.test_failover_scenarios import (
    download_setup,
    make_faulty_net,
)

from repro.obs import CaptureSink, arm_invariants

pytestmark = [pytest.mark.obs, pytest.mark.faults]

#: the events whose relative order the golden traces pin down
KEY_EVENTS = {
    "ready", "conn_established", "join", "conn_failed",
    "failover_pending", "failover", "sync_received", "replay",
    "stream_steered",
}


def is_subsequence(needle, haystack):
    it = iter(haystack)
    return all(item in it for item in needle)


def key_trace(sink):
    """(name, salient-data) tuples for the key events, in bus order."""
    out = []
    for event in sink.events:
        if event.name not in KEY_EVENTS:
            continue
        data = {k: v for k, v in event.data.items()
                if k in ("conn", "from", "to", "reason", "failed")}
        out.append((event.name, tuple(sorted(data.items()))))
    return out


def run_fig8_flap(seed=7):
    """Fig. 8 blackhole scenario at test scale: 2-path download with the
    primary flapping at t=1s for 2s."""
    sim, topo, cstack, sstack = make_faulty_net(seed=seed)
    harness = arm_invariants(sim)
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("session", "recovery"))
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 2 << 20)
    client.join(topo.path(1).client_addr)
    topo.flap_path(0, at=1.0, duration=2.0)
    sim.run(until=20)
    assert done and bytes(received) == payload
    return sink, harness


def run_fig9_rotation(seed=9):
    """Fig. 9 at test scale: 3 paths, the working one rotating, so the
    session must fail over repeatedly."""
    sim, topo, cstack, sstack = make_faulty_net(n_paths=3, seed=seed)
    harness = arm_invariants(sim)
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("session", "recovery"))
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 2 << 20)
    client.auto_user_timeout = 0.25
    for i in range(1, 3):
        client.join(topo.path(i).client_addr)
    sim.run(until=sim.now + 0.3)       # joins complete before the chaos
    topo.rotate_working(2.0)
    sim.run(until=40)
    assert done and bytes(received) == payload
    return sink, harness


def test_fig8_key_event_subsequence():
    sink, harness = run_fig8_flap()
    names = sink.names()
    # The failover chain, in causal order: the session comes up, the
    # second path joins, the flap kills the primary, streams move onto
    # the joined path, and the peer resynchronises + replays.
    assert is_subsequence(
        ["ready", "join", "conn_failed", "failover", "sync_received",
         "replay"],
        names,
    )
    # With a backup already joined the failover is immediate — no
    # pending state.
    assert "failover_pending" not in names
    harness.assert_clean()


def test_fig8_failover_without_backup_goes_through_pending():
    """No pre-joined backup: the failure must first park the streams
    (failover_pending), then a fresh join resolves it."""
    sim, topo, cstack, sstack = make_faulty_net()
    harness = arm_invariants(sim)
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("session", "recovery"))
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, 1 << 20)
    topo.flap_path(0, at=1.0, duration=2.0)
    sim.run(until=20)
    assert done and bytes(received) == payload
    assert is_subsequence(
        ["conn_failed", "failover_pending", "join", "failover"],
        sink.names(),
    )
    harness.assert_clean()


def test_fig8_failover_event_names_the_surviving_connection():
    sink, _harness = run_fig8_flap()
    (failover,) = sink.select(name="failover")
    failed = sink.select(name="conn_failed")
    assert failed[0].data["conn"] == failover.data["from"]
    assert failover.data["from"] != failover.data["to"]
    assert failover.data["streams"] >= 1


def test_fig8_peer_sees_the_sync_and_replay():
    sink, _harness = run_fig8_flap()
    syncs = sink.select(name="sync_received")
    assert syncs, "peer never processed the failover SYNC"
    (failover,) = sink.select(name="failover")
    # The SYNC names the connection that failed and arrives on the
    # surviving one.
    assert syncs[0].data["failed"] == failover.data["from"]
    assert syncs[0].data["conn"] == failover.data["to"]
    # The failing side replays its unacked records after the SYNC.
    assert sink.select(name="replay")


def test_fig8_golden_trace_is_stable_across_runs():
    first, _ = run_fig8_flap()
    second, _ = run_fig8_flap()
    assert key_trace(first) == key_trace(second)
    assert key_trace(first), "key-event trace unexpectedly empty"


def test_fig9_multiple_failovers_in_order():
    sink, harness = run_fig9_rotation()
    failovers = sink.select(name="failover")
    assert len(failovers) >= 2, (
        "rotating outages should force repeated failovers, saw %d"
        % len(failovers))
    # Every failover is preceded by its connection failing.
    names = sink.names()
    assert is_subsequence(["conn_failed", "failover"], names)
    times = [e.time for e in sink.events]
    assert times == sorted(times)
    harness.assert_clean()


def test_fig9_golden_trace_is_stable_across_runs():
    first, _ = run_fig9_rotation()
    second, _ = run_fig9_rotation()
    assert key_trace(first) == key_trace(second)


def test_fig9_different_seed_still_clean():
    """The invariants hold regardless of the seed (the golden *order*
    may differ; correctness may not)."""
    _sink, harness = run_fig9_rotation(seed=23)
    harness.assert_clean()
