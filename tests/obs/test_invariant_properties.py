"""Property suite: the protocol invariants hold under random faults.

Every checker is armed while a TCPLS download runs over adversarial
channels — Gilbert–Elliott burst loss (grid + hypothesis-drawn),
reordering jitter and scripted flaps.  Whatever the channel does, the
protocol must not rewind a crypto context, reuse a nonce, collapse the
congestion window, fail over onto a dead connection or invent packets.
"""

import pytest

from hypothesis import given, settings, strategies as st

from tests.core.test_failover_scenarios import (
    download_setup,
    make_faulty_net,
)

from repro.net.faults import GilbertElliott
from repro.obs import arm_invariants

pytestmark = [pytest.mark.obs, pytest.mark.faults]


def clean_download_under(fault_builder, n_paths=2, seed=7, size=1 << 20,
                         flap=True):
    """Run a failover-enabled download with the faults applied and all
    invariant checkers armed; the transfer must complete intact and the
    checkers must stay clean.  Returns the harness."""
    sim, topo, cstack, sstack = make_faulty_net(n_paths=n_paths, seed=seed)
    harness = arm_invariants(sim)
    client, sessions, payload, received, done = download_setup(
        sim, topo, cstack, sstack, size)
    client.join(topo.path(1).client_addr)
    fault_builder(topo)
    if flap:
        topo.flap_path(0, at=1.0, duration=1.5)
    sim.run(until=60)
    assert done, "transfer never completed under faults"
    assert bytes(received) == payload
    harness.assert_clean()
    return harness


LOSS_GRID = [
    # (p_gb, p_bg, loss_bad) on the data direction of the backup path,
    # so recovery itself happens over a lossy channel.
    (0.01, 0.50, 1.0),
    (0.03, 0.30, 0.8),
    (0.05, 0.20, 0.6),
]


@pytest.mark.parametrize("p_gb,p_bg,loss_bad", LOSS_GRID)
def test_invariants_hold_across_burst_loss_grid(p_gb, p_bg, loss_bad):
    def build(topo):
        topo.path(1).s2c.add_fault(
            GilbertElliott(p_gb, p_bg, loss_bad=loss_bad, seed=41))
        topo.path(1).c2s.add_fault(
            GilbertElliott(p_gb / 2, p_bg, loss_bad=loss_bad, seed=42))

    clean_download_under(build)


@pytest.mark.parametrize("reorder", [0.002, 0.01])
def test_invariants_hold_under_reordering_jitter(reorder):
    """Random per-packet jitter reorders the wire; sequence and nonce
    invariants are about *sealing* order, which must stay untouched."""
    def build(topo):
        for path in topo.paths:
            path.c2s.jitter = reorder
            path.s2c.jitter = reorder

    clean_download_under(build)


def test_invariants_hold_with_loss_on_both_paths_no_flap():
    """Loss without any scripted outage: failover may or may not
    trigger via UTO; either way the invariants hold."""
    def build(topo):
        for path in topo.paths:
            path.s2c.add_fault(
                GilbertElliott(0.02, 0.4, loss_bad=0.9, seed=5))

    clean_download_under(build, flap=False)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    p_gb=st.floats(min_value=0.005, max_value=0.05),
    p_bg=st.floats(min_value=0.1, max_value=0.6),
    loss_bad=st.floats(min_value=0.4, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_invariants_hold_for_any_ge_channel(p_gb, p_bg,
                                                     loss_bad, seed):
    def build(topo):
        topo.path(1).s2c.add_fault(
            GilbertElliott(p_gb, p_bg, loss_bad=loss_bad, seed=seed))
        topo.path(1).c2s.add_fault(
            GilbertElliott(p_gb / 2, p_bg, loss_bad=loss_bad,
                           seed=seed + 1))

    clean_download_under(build, size=512 << 10)
