"""The ``perf`` observability category: crypto byte totals and
event-loop heap-compaction statistics."""

import pytest

from helpers import connect_tcpls, make_net, tcpls_pair

from repro.net import Simulator
from repro.obs import ALL_CATEGORIES, CAT_PERF, CaptureSink

pytestmark = pytest.mark.obs


def test_perf_is_a_registered_category():
    assert CAT_PERF in ALL_CATEGORIES


def test_session_emits_crypto_totals_on_close():
    sim, topo, cstack, sstack = make_net()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=(CAT_PERF,))
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    payload = bytes(range(256)) * 256
    stream.send(payload)
    sim.run(until=2)
    conn.tcp.close()
    sim.run(until=4)

    # The server observes the FIN and publishes its totals on close.
    totals = [e for e in sink.events if e.name == "crypto_totals"]
    assert totals, "no crypto_totals emitted on the perf category"
    server_totals = [e for e in totals if e.data["role"] == "server"]
    assert server_totals
    assert server_totals[-1].data["bytes_opened"] >= len(payload)
    # End-of-run reporting is also available on demand (the benches
    # call this for still-open sessions).
    client.emit_perf_totals()
    client_totals = [e for e in sink.events
                     if e.name == "crypto_totals"
                     and e.data["role"] == "client"]
    assert client_totals
    last = client_totals[-1].data
    assert last["bytes_sealed"] >= len(payload)
    assert last["records_sent"] >= 1
    assert last["heap_compactions"] == sim.compactions


def test_stats_track_sealed_and_opened_bytes():
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    stream = client.create_stream(conn)
    payload = b"x" * 50000
    stream.send(payload)
    sim.run(until=2)
    assert client.stats["bytes_sealed"] >= len(payload)
    assert sessions[0].stats["bytes_opened"] >= len(payload)
    # Both directions carry control/ACK records too, so the counters
    # are never smaller than the raw payload but stay the same order.
    assert client.stats["bytes_sealed"] < 2 * len(payload)


def test_heap_compaction_event_carries_queue_sizes():
    from repro.net.simulator import _COMPACT_MIN_CANCELLED

    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=(CAT_PERF,))
    events = [sim.schedule(1.0 + i, lambda: None)
              for i in range(2 * _COMPACT_MIN_CANCELLED)]
    for event in events[: _COMPACT_MIN_CANCELLED + 1]:
        event.cancel()
    names = [e.name for e in sink.events]
    assert "heap_compaction" in names
    data = sink.events[names.index("heap_compaction")].data
    assert data["before"] >= data["after"]
    assert data["compactions"] == sim.compactions
