"""Invariant checkers: each one must fire on a deliberately broken
event stream (the negative tests) and stay silent on a clean one."""

import pytest

from repro.net import Simulator
from repro.obs import (
    CwndSanityChecker,
    FailoverSanityChecker,
    InvariantViolationError,
    LinkConservationChecker,
    MonotoneSeqChecker,
    NonceUniquenessChecker,
    arm_invariants,
)

pytestmark = pytest.mark.obs


def armed(checker_cls, strict=False):
    """(sim, harness, the single checker instance)."""
    sim = Simulator()
    harness = arm_invariants(sim, checkers=(checker_cls,), strict=strict)
    return sim, harness, harness.checkers[0]


# -- MonotoneSeqChecker ------------------------------------------------------

def test_monotone_seq_accepts_dense_sequences():
    sim, harness, _ = armed(MonotoneSeqChecker)
    for stream in (1, 2):
        for seq in range(5):
            sim.bus.emit("tls", "record_sealed",
                         {"session": 0, "stream": stream, "seq": seq})
    harness.assert_clean()


def test_monotone_seq_fires_on_regression():
    sim, harness, checker = armed(MonotoneSeqChecker)
    for seq in (0, 1, 2, 1):     # rewound crypto context
        sim.bus.emit("tls", "record_sealed",
                     {"session": 0, "stream": 1, "seq": seq})
    (violation,) = checker.violations
    assert violation.invariant == "monotone-seq"
    assert violation.details["seq"] == 1
    assert violation.details["expected"] == 3
    with pytest.raises(InvariantViolationError):
        harness.assert_clean()


def test_monotone_seq_fires_on_gap():
    sim, _harness, checker = armed(MonotoneSeqChecker)
    for seq in (0, 2):           # seq 1 never sealed
        sim.bus.emit("tls", "record_sealed",
                     {"session": 0, "stream": 1, "seq": seq})
    assert checker.violations


# -- NonceUniquenessChecker --------------------------------------------------

def test_nonce_unique_fires_on_reseal():
    sim, _harness, checker = armed(NonceUniquenessChecker)
    event = {"session": 0, "stream": 3, "seq": 7}
    sim.bus.emit("tls", "record_sealed", dict(event))
    assert not checker.violations
    sim.bus.emit("tls", "record_sealed", dict(event))
    (violation,) = checker.violations
    assert violation.invariant == "nonce-unique"
    assert "reuse" in violation.message


def test_nonce_unique_distinguishes_streams():
    """Same seq on different streams is fine — per-stream IVs make the
    nonces distinct (paper Fig. 2)."""
    sim, harness, _ = armed(NonceUniquenessChecker)
    sim.bus.emit("tls", "record_sealed", {"session": 0, "stream": 1, "seq": 0})
    sim.bus.emit("tls", "record_sealed", {"session": 0, "stream": 2, "seq": 0})
    sim.bus.emit("tls", "record_sealed", {"session": 1, "stream": 1, "seq": 0})
    harness.assert_clean()


# -- CwndSanityChecker -------------------------------------------------------

def test_cwnd_sane_fires_on_non_positive_cwnd():
    sim, _harness, checker = armed(CwndSanityChecker)
    sim.bus.emit("tcp", "cwnd_updated",
                 {"conn": 1, "cwnd": 0, "ssthresh": None, "min_cwnd": 2})
    (violation,) = checker.violations
    assert violation.invariant == "cwnd-sane"
    assert "not positive" in violation.message


def test_cwnd_sane_fires_on_collapsed_ssthresh():
    sim, _harness, checker = armed(CwndSanityChecker)
    sim.bus.emit("tcp", "cwnd_updated",
                 {"conn": 1, "cwnd": 10, "ssthresh": 1, "min_cwnd": 2})
    (violation,) = checker.violations
    assert "ssthresh" in violation.message


def test_cwnd_sane_accepts_infinite_ssthresh_as_none():
    sim, harness, _ = armed(CwndSanityChecker)
    sim.bus.emit("tcp", "cwnd_updated",
                 {"conn": 1, "cwnd": 10, "ssthresh": None, "min_cwnd": 2})
    sim.bus.emit("tcp", "cwnd_updated",
                 {"conn": 1, "cwnd": 4, "ssthresh": 5, "min_cwnd": 2})
    harness.assert_clean()


# -- FailoverSanityChecker ---------------------------------------------------

def test_failover_legal_accepts_established_target():
    sim, harness, _ = armed(FailoverSanityChecker)
    sim.bus.emit("session", "conn_established", {"session": 0, "conn": 1})
    sim.bus.emit("session", "join", {"session": 0, "conn": 2})
    sim.bus.emit("session", "conn_failed",
                 {"session": 0, "conn": 1, "reason": "uto"})
    sim.bus.emit("recovery", "failover", {"session": 0, "from": 1, "to": 2})
    harness.assert_clean()


def test_failover_fires_on_self_target():
    sim, _harness, checker = armed(FailoverSanityChecker)
    sim.bus.emit("session", "conn_established", {"session": 0, "conn": 1})
    sim.bus.emit("recovery", "failover", {"session": 0, "from": 1, "to": 1})
    assert checker.violations
    assert checker.violations[0].invariant == "failover-legal"


def test_failover_fires_on_failed_target():
    sim, _harness, checker = armed(FailoverSanityChecker)
    for conn in (1, 2):
        sim.bus.emit("session", "conn_established",
                     {"session": 0, "conn": conn})
    sim.bus.emit("session", "conn_failed",
                 {"session": 0, "conn": 2, "reason": "rst"})
    sim.bus.emit("recovery", "failover", {"session": 0, "from": 1, "to": 2})
    (violation,) = checker.violations
    assert "onto failed" in violation.message


def test_failover_fires_on_never_established_target():
    sim, _harness, checker = armed(FailoverSanityChecker)
    sim.bus.emit("session", "conn_established", {"session": 0, "conn": 1})
    sim.bus.emit("recovery", "failover", {"session": 0, "from": 1, "to": 9})
    (violation,) = checker.violations
    assert "never-established" in violation.message


def test_failover_tracks_sessions_independently():
    """conn 2 established on session 0 does not legalise a failover onto
    conn 2 of session 1."""
    sim, _harness, checker = armed(FailoverSanityChecker)
    sim.bus.emit("session", "conn_established", {"session": 0, "conn": 2})
    sim.bus.emit("session", "conn_established", {"session": 1, "conn": 1})
    sim.bus.emit("recovery", "failover", {"session": 1, "from": 1, "to": 2})
    assert checker.violations


# -- LinkConservationChecker -------------------------------------------------

def test_link_conservation_accepts_balanced_flow():
    sim, harness, _ = armed(LinkConservationChecker)
    for _ in range(3):
        sim.bus.emit("link", "enqueue", {"link": "l0", "bytes": 100})
    sim.bus.emit("link", "deliver", {"link": "l0", "bytes": 100})
    sim.bus.emit("link", "drop", {"link": "l0", "bytes": 100,
                                  "reason": "loss"})
    harness.assert_clean()      # one packet legitimately still in flight


def test_link_conservation_fires_on_packet_creation():
    sim, _harness, checker = armed(LinkConservationChecker)
    sim.bus.emit("link", "enqueue", {"link": "l0", "bytes": 100})
    sim.bus.emit("link", "deliver", {"link": "l0", "bytes": 100})
    sim.bus.emit("link", "deliver", {"link": "l0", "bytes": 100})
    (violation,) = checker.violations
    assert violation.invariant == "link-conservation"
    assert violation.details == {"link": "l0", "enqueued": 1,
                                 "delivered": 2, "dropped": 0}


def test_link_conservation_counts_per_link():
    sim, _harness, checker = armed(LinkConservationChecker)
    sim.bus.emit("link", "enqueue", {"link": "a", "bytes": 1})
    sim.bus.emit("link", "deliver", {"link": "b", "bytes": 1})
    assert checker.violations           # link b delivered from nothing


def test_link_conservation_finish_reports_residue():
    sim, _harness, checker = armed(LinkConservationChecker)
    # Corrupt the counter directly to model a tail-of-run bookkeeping
    # bug that on_event alone would not notice.
    checker._counts["l0"] = [2, 2, 1]
    checker.finish()
    (violation,) = checker.violations
    assert violation.time == -1.0       # finish()-time, no event
    assert "residue" in violation.message


# -- harness behaviour -------------------------------------------------------

def test_strict_mode_raises_at_the_violating_instant():
    sim, _harness, _checker = armed(MonotoneSeqChecker, strict=True)
    sim.bus.emit("tls", "record_sealed", {"session": 0, "stream": 1, "seq": 0})
    sim.schedule(2.0, sim.bus.emit, "tls", "record_sealed",
                 {"session": 0, "stream": 1, "seq": 5})
    with pytest.raises(InvariantViolationError) as excinfo:
        sim.run()
    assert excinfo.value.violations[0].time == 2.0


def test_harness_sorts_violations_across_checkers_by_time():
    sim = Simulator()
    harness = arm_invariants(sim)
    sim.schedule(2.0, sim.bus.emit, "tcp", "cwnd_updated",
                 {"conn": 1, "cwnd": -1, "min_cwnd": 2})
    sim.schedule(1.0, sim.bus.emit, "tls", "record_sealed",
                 {"session": 0, "stream": 1, "seq": 4})
    sim.run()
    violations = harness.finish()
    assert [v.invariant for v in violations] == ["monotone-seq", "cwnd-sane"]
    assert [v.time for v in violations] == [1.0, 2.0]


def test_disarm_stops_checking():
    sim, harness, checker = armed(MonotoneSeqChecker)
    harness.disarm()
    sim.bus.emit("tls", "record_sealed", {"session": 0, "stream": 1, "seq": 9})
    assert not checker.violations
    assert not sim.bus.wants("tls")


def test_arm_accepts_ready_made_instances():
    sim = Simulator()
    checker = MonotoneSeqChecker()
    harness = arm_invariants(sim, checkers=(checker,))
    assert harness.checkers == [checker]


def test_violation_to_dict_is_json_shaped():
    sim, _harness, checker = armed(MonotoneSeqChecker)
    sim.bus.emit("tls", "record_sealed", {"session": 0, "stream": 1, "seq": 3})
    document = checker.violations[0].to_dict()
    assert set(document) == {"time", "invariant", "message", "details"}
