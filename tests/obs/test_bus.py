"""The event bus: subscription, filtering, scoping and sinks."""

import pytest

from repro.net import Simulator
from repro.obs import CaptureSink, RingBufferSink
from repro.obs.events import ALL_CATEGORIES, Event

pytestmark = pytest.mark.obs


def test_emit_without_subscribers_is_a_noop():
    sim = Simulator()
    assert sim.bus.emit("tcp", "state_changed", {"conn": 1}) is None
    assert sim.bus.events_emitted == 0


def test_emit_delivers_event_with_sim_time():
    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink)
    sim.schedule(1.25, sim.bus.emit, "tcp", "rto", {"conn": 3})
    sim.run()
    (event,) = sink.events
    assert (event.time, event.category, event.name) == (1.25, "tcp", "rto")
    assert event.data == {"conn": 3}
    assert sim.bus.events_emitted == 1


def test_callable_sinks_are_supported():
    sim = Simulator()
    seen = []
    sim.bus.subscribe(seen.append)
    sim.bus.emit("link", "drop", {"reason": "loss"})
    assert len(seen) == 1 and isinstance(seen[0], Event)


def test_category_filter():
    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("tls", "session"))
    sim.bus.emit("tcp", "rto", {})
    sim.bus.emit("tls", "record_sealed", {"seq": 0})
    sim.bus.emit("session", "stream_created", {"stream": 1})
    assert sink.names() == ["record_sealed", "stream_created"]


def test_where_filter_scopes_by_data_equality():
    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink, where={"session": 1})
    sim.bus.emit("tls", "record_sealed", {"session": 1, "seq": 0})
    sim.bus.emit("tls", "record_sealed", {"session": 2, "seq": 0})
    sim.bus.emit("tls", "record_sealed", {"seq": 5})  # no session key
    assert len(sink.events) == 1
    assert sink.events[0].data["session"] == 1


def test_emit_returns_none_when_where_rejects_all():
    """An event nobody accepted counts as not emitted."""
    sim = Simulator()
    sim.bus.subscribe(CaptureSink(), where={"session": 9})
    assert sim.bus.emit("tls", "record_sealed", {"session": 1}) is None
    assert sim.bus.events_emitted == 0


def test_unsubscribe_by_subscription_and_by_sink():
    sim = Simulator()
    sink = CaptureSink()
    sub = sim.bus.subscribe(sink, categories=("tcp",))
    sim.bus.subscribe(sink, categories=("tls",))
    sim.bus.emit("tcp", "a", {})
    sim.bus.unsubscribe(sub)
    sim.bus.emit("tcp", "b", {})
    sim.bus.emit("tls", "c", {})
    assert sink.names() == ["a", "c"]
    sim.bus.unsubscribe(sink)          # removes the remaining sub
    sim.bus.emit("tls", "d", {})
    assert sink.names() == ["a", "c"]


def test_wants_reflects_live_subscriptions():
    sim = Simulator()
    assert not sim.bus.wants("tcp")
    sub = sim.bus.subscribe(CaptureSink(), categories=("tcp",))
    assert sim.bus.wants("tcp") and not sim.bus.wants("tls")
    sim.bus.unsubscribe(sub)
    assert not sim.bus.wants("tcp")
    sim.bus.subscribe(CaptureSink())   # unfiltered listens to everything
    for category in ALL_CATEGORIES:
        assert sim.bus.wants(category)


def test_wants_memo_invalidated_on_mutation():
    """wants() is memoised per category; any subscribe/unsubscribe must
    invalidate the memo (a stale True would re-arm dead emitters, a
    stale False would silence live sinks)."""
    sim = Simulator()
    assert not sim.bus.wants("tcp")
    sub = sim.bus.subscribe(CaptureSink(), categories=("tcp",))
    assert sim.bus.wants("tcp")            # memo rebuilt after subscribe
    assert sim.bus.wants("tcp")            # memo hit
    sim.bus.unsubscribe(sub)
    assert not sim.bus.wants("tcp")        # memo rebuilt after unsubscribe


def test_emit_on_unwatched_category_skips_dispatch():
    """With only category-filtered subscribers, an emit on another
    category must build no Event and count nothing."""
    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("session",))
    assert sim.bus.emit("tcp", "rto", {"conn": 1}) is None
    assert sim.bus.events_emitted == 0
    assert sink.events == []
    assert sim.bus.emit("session", "stream_created", {}) is not None


def test_subscribe_during_emit_takes_effect_next_emit():
    """The emission snapshot is immutable: a sink subscribed from
    inside a handler sees the *next* event, never the current one."""
    sim = Simulator()
    late = CaptureSink()

    def recruiter(event):
        if not late.events and event.name == "first":
            sim.bus.subscribe(late)

    sim.bus.subscribe(recruiter)
    sim.bus.emit("tcp", "first", {})
    assert late.events == []
    sim.bus.emit("tcp", "second", {})
    assert late.names() == ["second"]


def test_unsubscribe_during_emit_respects_active_flag():
    """A sink unsubscribed mid-emit (by an earlier handler) must not
    receive the in-flight event: the snapshot still lists it, the
    active flag gates delivery."""
    sim = Simulator()
    victim = CaptureSink()

    def assassin(event):
        sim.bus.unsubscribe(victim)

    sim.bus.subscribe(assassin)
    sim.bus.subscribe(victim)
    sim.bus.emit("tcp", "hit", {})
    assert victim.events == []


def test_capture_select():
    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink)
    sim.bus.emit("tls", "record_sealed", {"stream": 1, "seq": 0})
    sim.bus.emit("tls", "record_sealed", {"stream": 2, "seq": 0})
    sim.bus.emit("tls", "record_opened", {"stream": 1, "seq": 0})
    assert len(sink.select(name="record_sealed")) == 2
    assert len(sink.select(name="record_sealed", stream=1)) == 1
    assert len(sink.select(category="tls")) == 3
    assert sink.select(category="session") == []


def test_ring_buffer_keeps_only_the_tail():
    sim = Simulator()
    ring = RingBufferSink(capacity=3)
    sim.bus.subscribe(ring)
    for i in range(10):
        sim.bus.emit("tcp", "tick", {"i": i})
    assert [e.data["i"] for e in ring.events] == [7, 8, 9]
    assert ring.seen == 10
    assert ring.dropped == 7


def test_ring_buffer_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_event_to_dict_uses_milliseconds():
    event = Event(1.5, "recovery", "failover", {"from": 0, "to": 1})
    assert event.to_dict() == {
        "time": 1500.0,
        "category": "recovery",
        "event": "failover",
        "data": {"from": 0, "to": 1},
    }


def test_bad_sink_raises_type_error():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.bus.subscribe(object())
