"""Cross-layer tracing: events from a real protocol run must agree
with the ground-truth counters the layers already keep."""

import pytest

from helpers import (
    bulk_receiver,
    bulk_sender,
    connect_tcpls,
    make_net,
    tcp_pair,
    tcpls_pair,
)

from repro.obs import CaptureSink, arm_invariants

pytestmark = pytest.mark.obs

SIZE = 256 << 10


def test_tcp_state_machine_edges_are_traced():
    sim, topo, cstack, sstack = make_net()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("tcp",))
    conn, accepted = tcp_pair(sim, topo, cstack, sstack)
    for c in accepted:
        c.on_data = lambda cc: cc.recv()
    bulk_sender(conn, bytes(range(256)) * 64)
    sim.run(until=2.0)
    conn.close()
    sim.run(until=10.0)
    edges = [(e.data["old"], e.data["new"])
             for e in sink.select(name="state_changed",
                                  conn=conn.conn_id)]
    # The client walked the canonical active-open/active-close path.
    assert edges[0] == ("CLOSED", "SYN_SENT")
    assert ("SYN_SENT", "ESTABLISHED") in edges
    assert ("ESTABLISHED", "FIN_WAIT_1") in edges
    # The passive side never closes here, so the client parks in
    # FIN_WAIT_2 (or, if the FIN exchange completed, beyond it).
    assert edges[-1][1] in ("FIN_WAIT_2", "TIME_WAIT", "CLOSED")
    # Every edge is connected: new state of edge N is old state of N+1.
    for (_, new), (old, _) in zip(edges, edges[1:]):
        assert new == old


def test_cwnd_events_track_the_controller():
    from repro.net.address import Endpoint

    sim, topo, cstack, sstack = make_net()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("tcp",))
    on_accept, _received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    bulk_sender(conn, b"z" * SIZE)
    sim.run(until=3.0)
    updates = sink.select(name="cwnd_updated", conn=conn.conn_id)
    assert updates, "bulk transfer produced no cwnd updates"
    # The last traced value equals the controller's live value (events
    # carry whole bytes — int() of the float cwnd).
    assert updates[-1].data["cwnd"] == int(conn.cc.cwnd)
    assert all(u.data["cwnd"] > 0 for u in updates)
    # Deduplicated: consecutive events differ in cwnd or ssthresh.
    for a, b in zip(updates, updates[1:]):
        assert (a.data["cwnd"], a.data["ssthresh"]) != \
            (b.data["cwnd"], b.data["ssthresh"])


def test_record_events_match_session_stats():
    sim, topo, cstack, sstack = make_net()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("tls",))
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    client.create_stream(conn).send(b"r" * SIZE)
    sim.run(until=sim.now + 2.0)
    sealed_client = sink.select(name="record_sealed",
                                session=client.obs_id)
    opened_server = sink.select(name="record_opened",
                                session=sessions[0].obs_id)
    assert len(sealed_client) == client.stats["records_sent"]
    assert len(opened_server) == sessions[0].stats["records_received"]
    # Nothing was lost on a clean network: the server opened every
    # record the client sealed (both directions carry ACK records too,
    # so compare the client->server direction only).
    assert len(opened_server) == len(sealed_client)


def test_link_drop_events_match_link_stats():
    from repro.net.address import Endpoint

    sim, topo, cstack, sstack = make_net()
    topo.path(0).c2s.loss_rate = 0.05
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=("link",))
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    bulk_sender(conn, b"d" * SIZE)
    finished = sim.run_until(lambda: len(received) >= SIZE, timeout=60)
    assert finished
    link = topo.path(0).c2s
    drops = sink.select(name="drop", link=link.obs_name)
    delivers = sink.select(name="deliver", link=link.obs_name)
    enqueues = sink.select(name="enqueue", link=link.obs_name)
    assert len(drops) == link.stats.dropped_packets > 0
    assert len(delivers) == link.stats.tx_packets
    assert len(enqueues) >= len(drops) + len(delivers)
    # Per-reason breakdown matches the link's own accounting.
    reasons = {}
    for event in drops:
        reasons[event.data["reason"]] = \
            reasons.get(event.data["reason"], 0) + 1
    assert reasons == dict(link.stats.drop_reasons)
    # And byte counts agree too.
    assert sum(e.data["bytes"] for e in delivers) == link.stats.tx_bytes


def test_full_run_with_everything_armed_is_clean_and_cheap():
    """All checkers + a ring buffer armed for a whole lossy transfer:
    zero violations, and the ring holds only its capacity."""
    from repro.obs import RingBufferSink

    sim, topo, cstack, sstack = make_net()
    topo.path(0).c2s.loss_rate = 0.02
    topo.path(0).s2c.loss_rate = 0.02
    harness = arm_invariants(sim)
    ring = RingBufferSink(capacity=256)
    sim.bus.subscribe(ring)
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    client.create_stream(conn).send(b"k" * SIZE)
    sim.run(until=sim.now + 5.0)
    harness.assert_clean()
    assert len(ring.events) <= 256
    assert ring.seen > 256 and ring.dropped == ring.seen - 256


def test_unsubscribed_run_emits_nothing():
    """With no sinks the whole instrumented stack emits zero events —
    the tracing layer must be free when off."""
    sim, topo, cstack, sstack = make_net()
    client, server, sessions = tcpls_pair(sim, topo, cstack, sstack)
    conn = connect_tcpls(sim, topo, client)
    sessions[0].on_stream_data = lambda st: st.recv()
    client.create_stream(conn).send(b"q" * SIZE)
    sim.run(until=sim.now + 2.0)
    assert sim.bus.events_emitted == 0
