"""The content-addressed result cache (``repro.perf.cache``).

The cache must be *safe by construction*: a key collision across
different specs, types or source states would silently serve a stale
result, so the keying rules are pinned here -- including the subtle
ones (``1`` vs ``1.0`` kwargs, cross-process stability, fingerprint
invalidation) -- and every failure mode of the store itself (missing,
corrupted, truncated entries) must degrade to a live run, never an
exception.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.perf import ResultCache, SweepPoint, source_fingerprint
from repro.perf.cache import (
    CACHE_ENV_VAR,
    canonical_point_spec,
    resolve_cache_dir,
)


def metrics_point(x=1, label="a"):
    return {"x": x, "label": label}


def make_point(**kwargs):
    return SweepPoint("unit/point", metrics_point, kwargs)


def make_cache(tmp_path, fingerprint="fp"):
    return ResultCache(str(tmp_path / "cache"), fingerprint)


def test_round_trip_and_counters(tmp_path):
    cache = make_cache(tmp_path)
    point = make_point(x=3)
    assert cache.get(point) is None
    result = {"name": point.name, "metrics": {"x": 3}}
    cache.put(point, result)
    assert cache.get(point) == result
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_key_depends_on_name_fn_and_kwargs(tmp_path):
    cache = make_cache(tmp_path)
    base = make_point(x=1)
    assert cache.key(base) == cache.key(make_point(x=1))
    assert cache.key(base) != cache.key(make_point(x=2))
    assert cache.key(base) != cache.key(
        SweepPoint("unit/other", metrics_point, {"x": 1}))
    assert cache.key(base) != cache.key(
        SweepPoint("unit/point", make_point, {"x": 1}))


def test_value_type_changes_the_key(tmp_path):
    """``1`` and ``1.0`` must never share a key: a point can branch on
    the type, and a bool is not the int it compares equal to."""
    cache = make_cache(tmp_path)
    keys = {cache.key(make_point(x=value))
            for value in (1, 1.0, True, "1", None)}
    assert len(keys) == 5
    cache.put(make_point(x=1),
              {"name": "unit/point", "metrics": {"x": 1}})
    assert cache.get(make_point(x=1.0)) is None


def test_key_stable_across_processes(tmp_path):
    """sha256 of the canonical spec -- no id()s, no hash randomisation."""
    point = make_point(x=7, label="cross")
    here = ResultCache("unused", "fp-x").key(point)
    script = (
        "from repro.perf import ResultCache, SweepPoint\n"
        "import tests.perf.test_cache as tc\n"
        "point = SweepPoint('unit/point', tc.metrics_point,"
        " {'x': 7, 'label': 'cross'})\n"
        "print(ResultCache('unused', 'fp-x').key(point))\n"
    )
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo, "src"), repo]
        + env.get("PYTHONPATH", "").split(os.pathsep))
    out = subprocess.run([sys.executable, "-c", script], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == here


def test_fingerprint_tracks_source_changes(tmp_path):
    src = tmp_path / "srcroot"
    src.mkdir()
    (src / "mod.py").write_text("A = 1\n")
    (src / "notes.txt").write_text("ignored\n")
    before = source_fingerprint([str(src)])
    assert before == source_fingerprint([str(src)])
    (src / "notes.txt").write_text("still ignored\n")
    assert source_fingerprint([str(src)]) == before
    (src / "mod.py").write_text("A = 2\n")
    after = source_fingerprint([str(src)])
    assert after != before
    (src / "extra.py").write_text("")
    assert source_fingerprint([str(src)]) != after


def test_source_change_invalidates_hits(tmp_path):
    src = tmp_path / "srcroot"
    src.mkdir()
    (src / "mod.py").write_text("A = 1\n")
    point = make_point(x=1)
    result = {"name": point.name, "metrics": {"x": 1}}
    cache = ResultCache(str(tmp_path / "cache"),
                        source_fingerprint([str(src)]))
    cache.put(point, result)
    assert cache.get(point) == result
    (src / "mod.py").write_text("A = 2\n")
    stale = ResultCache(str(tmp_path / "cache"),
                        source_fingerprint([str(src)]))
    assert stale.get(point) is None


@pytest.mark.parametrize("damage", [
    "not json at all",
    "{\"key\": \"wrong\"}",
    json.dumps({"key": None, "spec": "", "fingerprint": "fp",
                "result": {"error": "boom"}}),
    "",
])
def test_corrupted_entry_falls_through_to_a_live_run(tmp_path, damage):
    cache = make_cache(tmp_path)
    point = make_point(x=5)
    cache.put(point, {"name": point.name, "metrics": {"x": 5}})
    path = cache._path(cache.key(point))
    with open(path, "w") as handle:
        handle.write(damage)
    assert cache.get(point) is None
    cache.put(point, {"name": point.name, "metrics": {"x": 5}})
    assert cache.get(point) is not None


def test_error_results_are_never_cached(tmp_path):
    cache = make_cache(tmp_path)
    point = make_point(x=9)
    cache.put(point, {"name": point.name, "error": "RuntimeError: no"})
    assert cache.stores == 0
    assert cache.get(point) is None


def test_unkeyable_kwarg_is_rejected():
    with pytest.raises(TypeError):
        canonical_point_spec(make_point(x=object()))


def test_cache_dir_resolution(monkeypatch):
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    assert resolve_cache_dir(None) == ".bench_cache"
    monkeypatch.setenv(CACHE_ENV_VAR, "/tmp/envcache")
    assert resolve_cache_dir(None) == "/tmp/envcache"
    assert resolve_cache_dir("/tmp/cli") == "/tmp/cli"
