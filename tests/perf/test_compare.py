"""The benchmark regression gate (``benchmarks/compare.py``).

A bench present in the new run but absent from the baseline must be
reported as *new* and never fail the gate (it gets its first baseline
on the next refresh); real regressions must still exit nonzero.
"""

import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import compare    # noqa: E402


def write(tmp_path, name, benches):
    path = tmp_path / name
    path.write_text(json.dumps(
        {"benchmarks": [{"name": n, "min": v, "mean": v}
                        for n, v in benches.items()]}))
    return str(path)


def test_new_bench_without_baseline_passes(tmp_path, capsys):
    baseline = write(tmp_path, "base.json", {"old": 1.0})
    new = write(tmp_path, "new.json", {"old": 1.0, "brand_new": 5.0})
    assert compare.main([baseline, new]) == 0
    out = capsys.readouterr().out
    assert "brand_new" in out
    assert "(new: no baseline yet)" in out
    assert "1 new" in out


def test_only_new_benches_passes(tmp_path):
    baseline = write(tmp_path, "base.json", {})
    new = write(tmp_path, "new.json", {"a": 1.0, "b": 2.0})
    assert compare.main([baseline, new]) == 0


def test_regression_still_fails(tmp_path, capsys):
    baseline = write(tmp_path, "base.json", {"bench": 1.0})
    new = write(tmp_path, "new.json", {"bench": 2.0, "extra": 1.0})
    assert compare.main([baseline, new]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_within_threshold_passes(tmp_path):
    baseline = write(tmp_path, "base.json", {"bench": 1.0})
    new = write(tmp_path, "new.json", {"bench": 1.1})
    assert compare.main([baseline, new]) == 0


def test_removed_bench_is_reported_but_passes(tmp_path, capsys):
    baseline = write(tmp_path, "base.json", {"gone": 1.0, "kept": 1.0})
    new = write(tmp_path, "new.json", {"kept": 1.0})
    assert compare.main([baseline, new]) == 0
    assert "removed" in capsys.readouterr().out
