"""TrainCostAccountant: per-train CPU accounting off the perf bus."""

import pytest

from repro.net import Simulator
from repro.net.address import Endpoint
from repro.perf import TrainCostAccountant, attach_train_accounting
from repro.perf.costmodel import CpuProfile

from tests.helpers import bulk_receiver, bulk_sender, make_net


class FakeEvent:
    def __init__(self, category, name, data):
        self.category = category
        self.name = name
        self.data = data


def test_train_event_charges_per_train_costs():
    profile = CpuProfile()
    acct = TrainCostAccountant(profile)
    acct.on_event(FakeEvent("perf", "segment_train",
                            {"segments": 10, "bytes": 15000, "kind": "data"}))
    expected = (profile.syscall_ns
                + 10 * profile.tcp_tx_ns_per_wire_packet
                + 15000 * profile.memcpy_ns_per_byte)
    assert acct.tx_ns == pytest.approx(expected)
    assert acct.seal_ns == 0.0
    assert (acct.trains, acct.segments, acct.train_bytes) == (1, 10, 15000)


def test_pump_batch_charges_per_record_costs():
    profile = CpuProfile()
    acct = TrainCostAccountant(profile)
    acct.on_event(FakeEvent("perf", "pump_batch",
                            {"records": 4, "bytes": 8000}))
    expected = (4 * profile.aead_ns_per_op
                + 8000 * profile.aead_seal_ns_per_byte)
    assert acct.seal_ns == pytest.approx(expected)
    assert acct.tx_ns == 0.0
    assert acct.total_ns == acct.seal_ns


def test_unrelated_events_are_ignored():
    acct = TrainCostAccountant()
    acct.on_event(FakeEvent("perf", "heap_compaction",
                            {"before": 100, "after": 50}))
    acct.on_event(FakeEvent("session", "segment_train",
                            {"segments": 5, "bytes": 1000}))
    assert acct.total_ns == 0.0
    assert acct.trains == 0


def test_batching_amortises_syscall_cost():
    """The point of trains: N segments in one train must charge one
    syscall where N singleton trains charge N."""
    profile = CpuProfile()
    batched = TrainCostAccountant(profile)
    batched.on_event(FakeEvent("perf", "segment_train",
                               {"segments": 16, "bytes": 16 * 1500}))
    split = TrainCostAccountant(profile)
    for _ in range(16):
        split.on_event(FakeEvent("perf", "segment_train",
                                 {"segments": 1, "bytes": 1500}))
    saved = split.tx_ns - batched.tx_ns
    assert saved == pytest.approx(15 * profile.syscall_ns)


def test_attach_train_accounting_integrates_a_transfer():
    """End to end: a bulk TCP transfer books trains into the attached
    accountant and the summary matches the connection counters."""
    sim, topo, cstack, sstack = make_net(n_paths=1)
    acct = attach_train_accounting(sim)
    on_accept, received = bulk_receiver()
    sstack.listen(443, on_accept)
    p = topo.path(0)
    conn = cstack.connect(p.client_addr, Endpoint(p.server_addr, 443))
    payload = b"\x42" * (512 * 1024)
    bulk_sender(conn, payload)
    sim.run_until(lambda: len(received) >= len(payload), timeout=30.0)
    assert bytes(received) == payload
    assert acct.trains == conn.trains_sent > 0
    assert acct.segments == conn.train_segments_sent
    assert acct.tx_ns > 0
    summary = acct.summary()
    assert summary["trains"] == acct.trains
    assert summary["total_ns"] == pytest.approx(acct.tx_ns + acct.seal_ns)
    assert acct.modeled_goodput_gbps() > 0


def test_summary_is_json_friendly():
    import json

    acct = TrainCostAccountant()
    acct.on_event(FakeEvent("perf", "segment_train",
                            {"segments": 2, "bytes": 3000}))
    doc = json.loads(json.dumps(acct.summary()))
    assert doc["segments"] == 2
