"""The experiment matrix layer (``repro.perf.matrix``).

Pins the fleet-grade properties: declarative expansion with validity
predicates, substring/exact filters, shard journals that survive an
interrupt, resume that re-runs only missing/failed points,
rerun-failed that re-executes exactly the error-tagged points, and a
merged JSON that is byte-identical across jobs counts, cache states
and resume histories.
"""

import json

import pytest

from repro.perf import (
    Axis,
    MatrixSpec,
    ResultCache,
    ShardJournal,
    SweepPoint,
    expand_matrix,
    filter_points,
    run_matrix,
    sweep_to_json,
)
from repro.perf.matrix import MatrixPoint


# Importable top-level callables: spawn workers pickle them by
# reference (the same rule sweep points follow).

def cube_point(x=1, scale=1):
    return {"cube": x * x * x * scale}


def flaky_point(x=0, fail=False):
    if fail:
        raise RuntimeError("scripted failure %d" % x)
    return {"ok": x}


def spec_for(values=(1, 2, 3), family="unit"):
    return MatrixSpec(family, cube_point,
                      [Axis("x", values), Axis("scale", (1, 10))],
                      to_kwargs=lambda c: dict(c))


# -- expansion ---------------------------------------------------------------

def test_expansion_names_axes_and_kwargs():
    points = spec_for().expand()
    assert len(points) == 6
    first = points[0]
    assert first.name == "unit/x=1/scale=1"
    assert first.axes == {"x": 1, "scale": 1}
    assert first.kwargs == {"x": 1, "scale": 1}
    assert [p.name for p in points] == [
        "unit/x=1/scale=1", "unit/x=1/scale=10",
        "unit/x=2/scale=1", "unit/x=2/scale=10",
        "unit/x=3/scale=1", "unit/x=3/scale=10"]


def test_validity_predicate_drops_combinations():
    spec = MatrixSpec("unit", cube_point,
                      [Axis("x", (1, 2, 3)), Axis("scale", (1, 10))],
                      valid=lambda c: c["scale"] == 1 or c["x"] > 2)
    names = [p.name for p in spec.expand()]
    assert "unit/x=1/scale=10" not in names
    assert "unit/x=3/scale=10" in names
    assert len(names) == 4


def test_fixed_kwargs_and_to_kwargs_mapping():
    spec = MatrixSpec("unit", cube_point, [Axis("n", (2,))],
                      to_kwargs=lambda c: {"x": c["n"]},
                      fixed={"scale": 100})
    (point,) = spec.expand()
    assert point.kwargs == {"x": 2, "scale": 100}
    assert point.run() == {"cube": 800}


def test_duplicate_point_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        expand_matrix([spec_for(), spec_for()])


def test_empty_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        Axis("x", ())


def test_filter_substring_and_exact():
    points = spec_for().expand()
    assert len(filter_points(points, ["x=2"])) == 2
    assert len(filter_points(points, ["scale=10"])) == 3
    assert len(filter_points(points, None)) == 6
    exact = filter_points(points, ["unit/x=2/scale=1"], exact=True)
    assert [p.name for p in exact] == ["unit/x=2/scale=1"]
    assert filter_points(points, ["x=2"], exact=True) == []


def test_matrix_point_is_a_sweep_point():
    point = MatrixPoint("p", cube_point, {"x": 2}, axes={"x": 2})
    assert isinstance(point, SweepPoint)
    assert point.run() == {"cube": 8}


# -- execution ---------------------------------------------------------------

POINTS = spec_for().expand()


def test_run_matrix_results_in_canonical_order(tmp_path):
    results, stats = run_matrix(POINTS, jobs=2)
    assert [r["name"] for r in results] == [p.name for p in POINTS]
    assert results[0]["metrics"] == {"cube": 1}
    assert results[0]["axes"] == {"x": 1, "scale": 1}
    assert stats.executed == len(POINTS)
    assert stats.skipped == 0


def test_merged_json_identical_for_any_shard_split(tmp_path):
    serial, _ = run_matrix(POINTS, jobs=1,
                           journal=ShardJournal(str(tmp_path / "j1")))
    parallel, _ = run_matrix(POINTS, jobs=3,
                             journal=ShardJournal(str(tmp_path / "j3")))
    assert sweep_to_json(serial) == sweep_to_json(parallel)


def test_cache_serves_second_run_without_a_pool(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"), "fp")
    cold, cold_stats = run_matrix(POINTS, jobs=2, cache=cache)
    assert cold_stats.executed == len(POINTS)
    assert cold_stats.stored == len(POINTS)
    warm_cache = ResultCache(str(tmp_path / "cache"), "fp")
    warm, warm_stats = run_matrix(POINTS, jobs=2, cache=warm_cache)
    assert warm_stats.executed == 0
    assert warm_stats.cache_hits == len(POINTS)
    assert sweep_to_json(cold) == sweep_to_json(warm)


def test_journal_written_per_shard_as_points_complete(tmp_path):
    journal = ShardJournal(str(tmp_path / "journal"))
    run_matrix(POINTS, jobs=2, journal=journal)
    files = sorted(
        p.name for p in (tmp_path / "journal").iterdir())
    assert files == ["shard-0.jsonl", "shard-1.jsonl"]
    entries = journal.load()
    assert set(entries) == {p.name for p in POINTS}


def test_interrupted_shard_resumes_to_identical_json(tmp_path):
    """Kill mid-matrix (only a prefix journalled), resume, and the
    merged JSON must match an uninterrupted run byte for byte."""
    uninterrupted, _ = run_matrix(POINTS, jobs=2)

    journal = ShardJournal(str(tmp_path / "journal"))
    run_matrix(POINTS[:2], jobs=2, journal=journal)   # the "interrupt"
    # A torn tail line from the kill must not poison the journal.
    with open(journal._path(0), "a") as handle:
        handle.write('{"name": "unit/x=')
    resumed, stats = run_matrix(POINTS, jobs=2, journal=journal,
                                resume=True)
    assert stats.journal_reused == 2
    assert stats.executed == len(POINTS) - 2
    assert sweep_to_json(resumed) == sweep_to_json(uninterrupted)


def test_resume_reruns_failed_entries(tmp_path):
    points = [MatrixPoint("f/x=%d" % x, flaky_point,
                          {"x": x, "fail": x == 1}, axes={"x": x})
              for x in range(3)]
    journal = ShardJournal(str(tmp_path / "journal"))
    first, stats = run_matrix(points, jobs=1, journal=journal)
    assert "error" in first[1] and stats.errors == 1

    fixed = [MatrixPoint(p.name, flaky_point, {"x": p.axes["x"],
                                               "fail": False},
                         axes=p.axes) for p in points]
    second, stats = run_matrix(fixed, jobs=1, journal=journal,
                               resume=True)
    assert stats.journal_reused == 2        # successes kept
    assert stats.executed == 1              # only the failure re-ran
    assert all("metrics" in r for r in second)


def test_rerun_failed_bypasses_cache_for_failed_points(tmp_path):
    """--rerun-failed must force fresh execution of exactly the
    error-tagged points even when a (stale-success) cache entry for
    the same key exists."""
    point = MatrixPoint("f/x=1", flaky_point, {"x": 1, "fail": False},
                        axes={"x": 1})
    cache = ResultCache(str(tmp_path / "cache"), "fp")
    cache.put(point, {"name": point.name, "metrics": {"ok": -999}})
    journal = ShardJournal(str(tmp_path / "journal"))
    journal.append(0, {"name": point.name, "error": "RuntimeError: x"})

    results, stats = run_matrix([point], jobs=1, cache=cache,
                                journal=journal, rerun_failed=True)
    assert stats.executed == 1 and stats.cache_hits == 0
    assert results[0]["metrics"] == {"ok": 1}


def test_error_points_are_not_cached(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"), "fp")
    points = [MatrixPoint("f/x=1", flaky_point, {"x": 1, "fail": True},
                          axes={"x": 1})]
    _, stats = run_matrix(points, jobs=1, cache=cache)
    assert stats.errors == 1 and stats.stored == 0
    _, again = run_matrix(points, jobs=1,
                          cache=ResultCache(str(tmp_path / "cache"),
                                            "fp"))
    assert again.executed == 1              # failures always re-run


def test_fully_cached_matrix_spawns_no_pool(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path / "cache"), "fp")
    run_matrix(POINTS, jobs=2, cache=cache)

    import multiprocessing

    def boom(*args, **kwargs):
        raise AssertionError("pool spawned for a fully cached matrix")

    monkeypatch.setattr(multiprocessing, "get_context", boom)
    warm = ResultCache(str(tmp_path / "cache"), "fp")
    results, stats = run_matrix(POINTS, jobs=2, cache=warm)
    assert stats.cache_hits == len(POINTS)
    assert len(results) == len(POINTS)


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        run_matrix(POINTS, jobs=0)
