"""The fluid population scenarios (:mod:`repro.perf.loadgen`).

Covers the hoisted wave-schedule builder both harnesses share, and the
three 100k-class fluid scenarios at a scaled-down population: clean
completion, determinism, conservation at the probe, and the
failover-storm stall/migrate accounting.
"""

import json

import pytest

from repro.perf.loadgen import (
    FluidScenarioHarness,
    build_wave_schedule,
    run_fluid_scenario,
)

pytestmark = pytest.mark.fluid

FLOWS = 20_000


def test_wave_schedule_is_deterministic_and_covers_every_index():
    schedule = build_wave_schedule(100, waves=7, wave_interval=0.05)
    assert schedule == build_wave_schedule(100, waves=7, wave_interval=0.05)
    assert [i for _, i in schedule] == list(range(100))
    times = [t for t, _ in schedule]
    assert times == sorted(times)
    assert times[0] == 0.0
    # ceil(100/7)=15 per wave -> indices 0..14 in wave 0, etc.
    assert times[14] == 0.0 and times[15] == pytest.approx(0.05)
    # Short population: one per wave (ceil(3/20) = 1).
    assert build_wave_schedule(3, waves=20, wave_interval=0.05) == [
        (0.0, 0), (0.05, 1), (0.1, 2)]


def test_wave_schedule_honours_start_offset():
    schedule = build_wave_schedule(10, waves=2, wave_interval=0.1, start=5.0)
    assert schedule[0] == (5.0, 0)
    assert schedule[-1] == (pytest.approx(5.1), 9)


@pytest.mark.parametrize("scenario", FluidScenarioHarness.SCENARIOS)
def test_fluid_scenario_completes_all_flows(scenario):
    metrics = run_fluid_scenario(scenario=scenario, flows=FLOWS)
    assert metrics["flows_completed"] == FLOWS
    assert metrics["bytes_total"] == FLOWS * 1_000_000
    assert metrics["fluid_leaps"] > 0
    assert metrics["last_completion"] is not None
    # The event count is what makes 100k feasible: orders of magnitude
    # below one-event-per-packet (the population alone would need
    # millions).
    assert metrics["fluid_events"] < 10_000


def test_fluid_scenarios_are_deterministic():
    for scenario in FluidScenarioHarness.SCENARIOS:
        first = run_fluid_scenario(scenario=scenario, flows=2000)
        second = run_fluid_scenario(scenario=scenario, flows=2000)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


def test_fairness_probe_shows_rtt_weighted_shares_on_saturated_core():
    metrics = run_fluid_scenario(scenario="fairness", flows=FLOWS)
    probe = metrics["probe"]
    assert probe is not None
    # The shared core is saturated and rate x rtt is equalised across
    # the RTT-diverse groups (the 1/rtt weighting at work).
    assert probe["bottleneck_utilization"] == pytest.approx(1.0, abs=1e-3)
    assert probe["jain_rate_x_rtt"] == pytest.approx(1.0, abs=1e-3)


def test_incast_probe_saturates_the_receiver_access_link():
    metrics = run_fluid_scenario(scenario="incast", flows=FLOWS)
    assert metrics["probe"]["bottleneck_utilization"] == \
        pytest.approx(1.0, abs=1e-3)
    # The receiver leaf carried every byte (plus nothing else did more).
    links = metrics["links"]
    receiver = max(links, key=lambda name: links[name]["tx_bytes"])
    assert links[receiver]["tx_bytes"] >= metrics["bytes_total"] * 0.99


def test_failover_storm_stalls_and_migrates_every_cohort():
    metrics = run_fluid_scenario(scenario="failover_storm", flows=FLOWS)
    assert metrics["stalls"] == metrics["cohorts"]
    assert metrics["migrations"] == metrics["cohorts"]
    assert metrics["flows_completed"] == FLOWS
    # After the storm the backup core carried the remainder.
    assert metrics["links"]["core-backup"]["tx_bytes"] > 0


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError):
        FluidScenarioHarness(scenario="nope")
