"""The whole-matrix trend gate (``benchmarks/trend.py``).

The gate must pass on an identical matrix, fail on a seeded >20%
regression, group the failure report by axis value (naming the axis
value when *all* of its points slowed), treat new/removed points as
informational, and fail when a previously green point now errors.
"""

import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import trend    # noqa: E402


def entry(name, axes, **metrics):
    return {"name": name, "axes": axes, "metrics": metrics}


def matrix_doc():
    results = []
    for cipher in ("aes", "chacha"):
        for mtu in (1500, 9000):
            results.append(entry(
                "fig7/cipher=%s/mtu=%d" % (cipher, mtu),
                {"cipher": cipher, "mtu": mtu},
                gbps=10.0, done_at=2.0))
    return {"results": results}


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc, sort_keys=True))
    return str(path)


def test_identical_matrix_passes(tmp_path, capsys):
    base = write(tmp_path, "base.json", matrix_doc())
    new = write(tmp_path, "new.json", matrix_doc())
    assert trend.main([base, new]) == 0
    assert "within the envelope" in capsys.readouterr().out


def test_seeded_regression_fails_grouped_by_axis(tmp_path, capsys):
    base = write(tmp_path, "base.json", matrix_doc())
    doc = matrix_doc()
    for item in doc["results"]:
        if item["axes"]["cipher"] == "chacha":
            item["metrics"]["gbps"] = 7.0       # -30% throughput
    new = write(tmp_path, "new.json", doc)
    assert trend.main([base, new]) == 1
    out = capsys.readouterr().out
    assert "cipher=chacha" in out
    assert "ALL points of this value" in out
    assert "2/2" in out


def test_lower_is_better_direction(tmp_path):
    base = write(tmp_path, "base.json", matrix_doc())
    doc = matrix_doc()
    doc["results"][0]["metrics"]["done_at"] = 2.5   # +25% completion
    assert trend.main([base, write(tmp_path, "new.json", doc)]) == 1
    doc = matrix_doc()
    doc["results"][0]["metrics"]["done_at"] = 1.5   # faster: fine
    doc["results"][0]["metrics"]["gbps"] = 14.0     # more: fine
    assert trend.main([base, write(tmp_path, "new2.json", doc)]) == 0


def test_drift_within_threshold_passes(tmp_path):
    base = write(tmp_path, "base.json", matrix_doc())
    doc = matrix_doc()
    for item in doc["results"]:
        item["metrics"]["gbps"] = 9.0               # -10% < 20%
    assert trend.main([base, write(tmp_path, "new.json", doc)]) == 0
    assert trend.main([base, write(tmp_path, "new.json", doc),
                       "--threshold", "0.05"]) == 1


def test_new_and_removed_points_are_informational(tmp_path, capsys):
    base_doc = matrix_doc()
    new_doc = matrix_doc()
    base_doc["results"].append(entry("fig7/cipher=retired/mtu=0",
                                     {"cipher": "retired"}, gbps=1.0))
    new_doc["results"].append(entry("fig7/cipher=fresh/mtu=0",
                                    {"cipher": "fresh"}, gbps=1.0))
    assert trend.main([write(tmp_path, "b.json", base_doc),
                       write(tmp_path, "n.json", new_doc)]) == 0
    out = capsys.readouterr().out
    assert "no envelope entry yet" in out
    assert "present only in envelope" in out


def test_new_error_fails_the_gate(tmp_path, capsys):
    base = write(tmp_path, "base.json", matrix_doc())
    doc = matrix_doc()
    doc["results"][0] = {"name": doc["results"][0]["name"],
                         "error": "RuntimeError: boom"}
    assert trend.main([base, write(tmp_path, "new.json", doc)]) == 1
    assert "NEW ERROR" in capsys.readouterr().out


def test_non_directional_metrics_ignored(tmp_path):
    base_doc = matrix_doc()
    new_doc = matrix_doc()
    for item in base_doc["results"]:
        item["metrics"]["series_digest"] = 1.0
    for item in new_doc["results"]:
        item["metrics"]["series_digest"] = 99.0
    assert trend.main([write(tmp_path, "b.json", base_doc),
                       write(tmp_path, "n.json", new_doc)]) == 0
