"""Churn/soak run of the C1M load generator (:mod:`repro.perf.loadgen`).

A 2k-session simulated run with joins, a scripted path outage
(failovers) and close/reconnect churn must finish clean -- every
transfer delivered, every session torn down, the mux table empty --
and be **bit-deterministic**: two runs of the same configuration
produce byte-identical aggregate counters.

Marked ``smoke``: this is the heavyweight scenario tier.
"""

import json

import pytest

from repro.perf.loadgen import merge_shards, run_shard, shard_points

pytestmark = pytest.mark.smoke

CONFIG = dict(sessions=2000, seed=42, failover_sessions=16)


def test_churn_soak_2k_sessions_deterministic():
    first = run_shard(**CONFIG)
    second = run_shard(**CONFIG)

    # Byte-identical aggregate counters across runs.
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)

    # Clean finish: everything started became ready, transferred and
    # tore down; churn replaced a quarter of the population.
    assert first["started"] == first["ready"] == 2500
    assert first["closed"] == 2500
    assert first["transfers_completed"] == 2500 + 16   # failover extras
    assert first["peak_concurrent_sessions"] == 2000
    assert first["failovers"] == 16
    assert first["joins_completed"] > 0

    # No leaks: table and session map returned to zero, every accept
    # was torn down, every session retired.
    assert first["table_end"] == 0
    assert first["sessions_end"] == 0
    assert first["accepts"] == first["teardowns"]
    assert first["retired"] == 2500

    # The latency envelope is populated and sane: psk_ke handshakes
    # stay in the RTT neighbourhood even at the ramp peak.
    assert first["handshake_latency"]["count"] == 2500
    assert 0 < first["handshake_latency"]["p99"] < 0.1
    assert first["transfer_latency"]["p99"] > 0


def test_shard_layout_partition_and_merge():
    """Sharded points cover the population exactly once and the merged
    summary preserves the totals."""
    points = shard_points(10, 3, base_port=5000, seed=1)
    assert [p.kwargs["sessions"] for p in points] == [4, 3, 3]
    assert [p.kwargs["port"] for p in points] == [5000, 5001, 5002]

    results = [run_shard(**dict(p.kwargs, waves=4,
                                failover_sessions=0,
                                churn_fraction=0.0))
               for p in points]
    summary = merge_shards(results)
    assert summary["shards"] == 3
    assert summary["started"] == 10
    assert summary["transfers_completed"] == 10
    assert summary["table_end"] == 0 and summary["sessions_end"] == 0
    assert summary["sessions_per_sec"] == round(
        sum(r["sessions_per_sec"] for r in results), 3)
