"""Deterministic parallel sweep execution (repro.perf.sweep)."""

import json

import pytest

from repro.perf import SweepPoint, run_sweep, sweep_to_json


# Worker functions must be importable top-level callables (spawned
# workers pickle them by reference).

def square_point(x):
    return {"x": x, "square": x * x}


def failing_point(message="boom"):
    raise RuntimeError(message)


def connection_id_probe():
    """Exposes interpreter-state leaks: TcpConnection numbers itself
    with a class counter, so a reused worker would return different
    ids for the same point."""
    from repro.net import Simulator, build_multipath
    from repro.tcp import TcpStack

    sim = Simulator(seed=1)
    topo = build_multipath(sim, n_paths=1)
    stack = TcpStack(sim, topo.client)
    from repro.net.address import Endpoint
    conn = stack.connect(topo.path(0).client_addr,
                         Endpoint(topo.path(0).server_addr, 443))
    return {"conn_id": conn.conn_id, "iss": conn.iss}


POINTS = [SweepPoint("sq-%d" % x, square_point, {"x": x})
          for x in range(6)]


def test_results_come_back_in_input_order():
    results = run_sweep(POINTS, jobs=1)
    assert [r["name"] for r in results] == [p.name for p in POINTS]
    assert [r["metrics"]["square"] for r in results] == [
        x * x for x in range(6)]


def test_parallel_equals_serial():
    assert run_sweep(POINTS, jobs=2) == run_sweep(POINTS, jobs=1)


def test_parallel_json_is_byte_identical():
    serial = sweep_to_json(run_sweep(POINTS, jobs=1))
    parallel = sweep_to_json(run_sweep(POINTS, jobs=3))
    assert serial == parallel
    assert serial.endswith("\n")
    json.loads(serial)  # well-formed


def test_fresh_interpreter_per_point():
    """Two identical simulation points must return identical ids even
    in the same worker slot -- maxtasksperchild=1 guarantees it."""
    points = [SweepPoint("probe-a", connection_id_probe),
              SweepPoint("probe-b", connection_id_probe)]
    a, b = run_sweep(points, jobs=1)
    assert a["metrics"] == b["metrics"]


def test_failing_point_is_tagged_not_fatal():
    points = [SweepPoint("ok", square_point, {"x": 3}),
              SweepPoint("bad", failing_point, {"message": "kaput"}),
              SweepPoint("ok2", square_point, {"x": 4})]
    results = run_sweep(points, jobs=2)
    assert results[0]["metrics"]["square"] == 9
    assert results[1] == {"name": "bad", "error": "RuntimeError: kaput"}
    assert results[2]["metrics"]["square"] == 16


def test_unpicklable_point_rejected_up_front():
    with pytest.raises(ValueError, match="not picklable"):
        run_sweep([SweepPoint("lam", lambda: {})], jobs=1)


def test_bad_jobs_value_rejected():
    with pytest.raises(ValueError):
        run_sweep(POINTS, jobs=0)


def test_empty_sweep():
    assert run_sweep([], jobs=4) == []


def test_picklability_checked_once_per_distinct_fn(monkeypatch):
    """A matrix crosses one fn over hundreds of points; the up-front
    pickle check must pay per distinct callable, not per point."""
    import pickle as pickle_module

    from repro.perf import sweep as sweep_module

    calls = []
    real_dumps = pickle_module.dumps

    def counting_dumps(obj, *args, **kwargs):
        calls.append(obj)
        return real_dumps(obj, *args, **kwargs)

    monkeypatch.setattr(sweep_module.pickle, "dumps", counting_dumps)
    sweep_module._check_picklable(
        [SweepPoint("p%d" % i, square_point, {"x": i})
         for i in range(50)]
        + [SweepPoint("q", failing_point)])
    assert len(calls) == 2


def test_cached_sweep_skips_the_pool_entirely(tmp_path, monkeypatch):
    """When every point resolves from the cache (or none survive the
    filter), run_sweep must not spawn a worker pool at all."""
    from repro.perf import ResultCache

    cache = ResultCache(str(tmp_path / "cache"), "fp")
    cold = run_sweep(POINTS, jobs=2, cache=cache)
    assert cache.stores == len(POINTS)

    import multiprocessing

    def boom(*args, **kwargs):
        raise AssertionError("pool spawned for a fully cached sweep")

    monkeypatch.setattr(multiprocessing, "get_context", boom)
    warm = run_sweep(POINTS, jobs=2,
                     cache=ResultCache(str(tmp_path / "cache"), "fp"))
    assert warm == cold
    assert run_sweep([], jobs=2) == []


def test_partially_cached_sweep_runs_only_misses(tmp_path):
    from repro.perf import ResultCache

    cache = ResultCache(str(tmp_path / "cache"), "fp")
    run_sweep(POINTS[:3], jobs=1, cache=cache)
    cache2 = ResultCache(str(tmp_path / "cache"), "fp")
    results = run_sweep(POINTS, jobs=2, cache=cache2)
    assert cache2.hits == 3
    assert cache2.misses == len(POINTS) - 3
    assert results == run_sweep(POINTS, jobs=1)
