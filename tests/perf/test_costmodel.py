"""Cost model: the Fig. 7 orderings must be emergent and stable."""

import pytest

from repro.baselines.quic.impls import IMPL_PROFILES
from repro.perf import (
    CpuProfile,
    QuicSenderModel,
    TcplsModel,
    TcplsVariant,
    TlsTcpModel,
    solve_throughput_gbps,
)


@pytest.fixture
def cpu():
    return CpuProfile()


def gbps(model):
    return solve_throughput_gbps(model)


def test_baseline_matches_paper_tls_numbers(cpu):
    assert gbps(TlsTcpModel(cpu, mtu=1500)) == pytest.approx(10.3, rel=0.1)
    assert gbps(TlsTcpModel(cpu, mtu=9000)) == pytest.approx(12.6, rel=0.1)


def test_tcpls_base_similar_to_tls(cpu):
    tls = gbps(TlsTcpModel(cpu, mtu=1500))
    tcpls = gbps(TcplsModel(cpu, mtu=1500))
    assert tcpls == pytest.approx(tls, rel=0.1)
    assert tcpls >= tls  # the paper's small advantage at 1500


def test_failover_costs_single_digit_percent(cpu):
    base = gbps(TcplsModel(cpu, mtu=1500))
    failover = gbps(TcplsModel(cpu, mtu=1500,
                               variant=TcplsVariant.FAILOVER))
    assert failover == pytest.approx(9.66, rel=0.1)
    assert 0.85 < failover / base < 0.97


def test_multipath_within_ten_percent_of_failover(cpu):
    """Sec. 5.1: coupled 2-path TCPLS is 'less than 10% below
    Failover'."""
    failover = gbps(TcplsModel(cpu, mtu=1500,
                               variant=TcplsVariant.FAILOVER))
    multipath = gbps(TcplsModel(cpu, mtu=1500,
                                variant=TcplsVariant.MULTIPATH))
    assert 0.90 < multipath / failover < 1.0


def test_tcpls_at_least_twice_quicly(cpu):
    tcpls = gbps(TcplsModel(cpu, mtu=1500))
    quicly = gbps(QuicSenderModel(cpu, IMPL_PROFILES["quicly"], mtu=1500))
    assert tcpls / quicly >= 2.0


def test_quic_implementation_ordering(cpu):
    quicly = gbps(QuicSenderModel(cpu, IMPL_PROFILES["quicly"]))
    msquic = gbps(QuicSenderModel(cpu, IMPL_PROFILES["msquic"]))
    mvfst = gbps(QuicSenderModel(cpu, IMPL_PROFILES["mvfst"]))
    assert quicly > msquic > mvfst
    assert quicly == pytest.approx(4.4, rel=0.15)
    assert msquic == pytest.approx(1.96, rel=0.15)


def test_quicly_jumbo_decreases_but_beats_nogso(cpu):
    """Sec. 5.1: 'quicly's performance decreases with jumbo frames but
    is still faster than without GSO'."""
    at_1500 = gbps(QuicSenderModel(cpu, IMPL_PROFILES["quicly"], mtu=1500))
    at_9000 = gbps(QuicSenderModel(cpu, IMPL_PROFILES["quicly"], mtu=9000))
    nogso = gbps(QuicSenderModel(cpu, IMPL_PROFILES["quicly-nogso"],
                                 mtu=9000))
    assert at_9000 < at_1500
    assert at_9000 > nogso


def test_jumbo_helps_tcp_family(cpu):
    for model_cls in (TlsTcpModel, TcplsModel):
        assert gbps(model_cls(cpu, mtu=9000)) > gbps(model_cls(cpu,
                                                               mtu=1500))


def test_untuned_receive_path_costs_throughput(cpu):
    """The picotls buffer fix of Sec. 5.1 (~40% client gain): extra
    copies on the receive path must show up as lost throughput."""
    tuned = TlsTcpModel(cpu, mtu=1500, extra_copies=0)
    untuned = TlsTcpModel(cpu, mtu=1500, extra_copies=25)
    assert (untuned.receiver_ns_per_byte()
            > tuned.receiver_ns_per_byte() * 1.2)


def test_record_size_sweep_monotone(cpu):
    """Smaller records amortise less per-record work (App. A's CPU
    remark)."""
    rates = [gbps(TcplsModel(cpu, record_size=size))
             for size in (1500, 4096, 16384)]
    assert rates == sorted(rates)


def test_link_caps_throughput(cpu):
    slow_link = solve_throughput_gbps(TlsTcpModel(cpu), link_gbps=1.0)
    assert slow_link == 1.0


def test_ack_interval_sweep(cpu):
    """The paper's future-work knob: fewer record ACKs, less overhead."""
    sparse = gbps(TcplsModel(cpu, variant=TcplsVariant.FAILOVER,
                             ack_interval=64))
    default = gbps(TcplsModel(cpu, variant=TcplsVariant.FAILOVER,
                              ack_interval=16))
    dense = gbps(TcplsModel(cpu, variant=TcplsVariant.FAILOVER,
                            ack_interval=2))
    assert sparse > default > dense
