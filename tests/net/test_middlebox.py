"""Middlebox interference models (Sec. 2's interference classes)."""

from repro.net import Simulator
from repro.net.address import IPAddress
from repro.net.link import Link
from repro.net.middlebox import (
    Blackhole,
    NAT,
    OptionStrippingFirewall,
    Resegmenter,
    RstInjector,
    StatefulFirewall,
)
from repro.net.packet import Packet
from repro.tcp.options import MssOption, UserTimeoutOption
from repro.tcp.segment import Segment


def tcp_packet(payload=b"", flags=("ACK",), options=(), seq=0,
               src="10.0.0.1", dst="10.0.0.2", sport=1000, dport=2000):
    seg = Segment(src_port=sport, dst_port=dport, seq=seq,
                  flags=frozenset(flags), options=options, payload=payload)
    return Packet(IPAddress(src), IPAddress(dst), "tcp", seg)


def run_through(sim, boxes, packets, mtu=1500):
    link = Link(sim, rate_bps=None, delay=0.0, mtu=mtu)
    delivered = []
    link.connect(delivered.append)
    for box in boxes:
        link.add_middlebox(box)
    for packet in packets:
        link.send(packet)
    sim.run()
    return delivered


def test_blackhole_active_window():
    sim = Simulator()
    hole = Blackhole()
    hole.activate()
    assert run_through(sim, [hole], [tcp_packet()]) == []
    hole.deactivate()
    assert len(run_through(sim, [hole], [tcp_packet()])) == 1


def test_rst_injector_rewrites_one_packet():
    sim = Simulator()
    injector = RstInjector(active=True)
    out = run_through(sim, [injector], [tcp_packet(b"data"),
                                        tcp_packet(b"more")])
    assert len(out) == 2
    assert out[0].payload.is_rst
    assert not out[1].payload.is_rst  # one-shot


def test_option_stripping_firewall():
    sim = Simulator()
    firewall = OptionStrippingFirewall()
    packet = tcp_packet(options=(MssOption(1460), UserTimeoutOption(30)))
    (out,) = run_through(sim, [firewall], [packet])
    kinds = [o.kind for o in out.payload.options]
    assert kinds == [2]  # MSS survives, UTO (kind 28) stripped
    assert firewall.stripped == 1


def test_stateful_firewall_blocks_out_of_state():
    sim = Simulator()
    firewall = StatefulFirewall(sim=sim)
    no_syn = tcp_packet(b"x")
    assert run_through(sim, [firewall], [no_syn]) == []
    sim2 = Simulator()
    firewall2 = StatefulFirewall(sim=sim2)
    flow = [tcp_packet(flags=("SYN",)), tcp_packet(b"x")]
    assert len(run_through(sim2, [firewall2], flow)) == 2


def test_stateful_firewall_idle_timeout_rst():
    sim = Simulator()
    firewall = StatefulFirewall(sim=sim, idle_timeout=10.0)
    link = Link(sim, rate_bps=None, delay=0.0)
    delivered = []
    link.connect(delivered.append)
    link.add_middlebox(firewall)
    link.send(tcp_packet(flags=("SYN",)))
    sim.at(20.0, link.send, tcp_packet(b"late"))
    sim.run()
    assert delivered[1].payload.is_rst


def test_nat_rewrites_and_restores():
    sim = Simulator()
    nat = NAT(IPAddress("198.51.100.1"))
    out_link = Link(sim, rate_bps=None, delay=0.0)
    outbound = []
    out_link.connect(outbound.append)
    out_link.add_middlebox(nat.outbound)
    out_link.send(tcp_packet(b"req"))
    sim.run()
    (translated,) = outbound
    assert str(translated.src) == "198.51.100.1"
    assert translated.payload.src_port >= 40000

    # Reply path reverses the mapping.
    in_link = Link(sim, rate_bps=None, delay=0.0)
    inbound = []
    in_link.connect(inbound.append)
    in_link.add_middlebox(nat.inbound)
    reply = tcp_packet(b"resp", src="10.0.0.2", dst="198.51.100.1",
                       sport=2000, dport=translated.payload.src_port)
    in_link.send(reply)
    sim.run()
    (restored,) = inbound
    assert str(restored.dst) == "10.0.0.1"
    assert restored.payload.dst_port == 1000


def test_nat_drops_unsolicited_inbound():
    sim = Simulator()
    nat = NAT(IPAddress("198.51.100.1"))
    link = Link(sim, rate_bps=None, delay=0.0)
    inbound = []
    link.connect(inbound.append)
    link.add_middlebox(nat.inbound)
    link.send(tcp_packet(dst="198.51.100.1", dport=40001))
    sim.run()
    assert inbound == []


def test_resegmenter_preserves_bytestream():
    sim = Simulator()
    reseg = Resegmenter(chunk=500)
    packet = tcp_packet(payload=bytes(range(256)) * 6, seq=1000)  # 1536 B
    out = run_through(sim, [reseg], [packet], mtu=9000)
    assert len(out) == 4  # 500+500+500+36
    pieces = sorted((p.payload.seq, p.payload.payload) for p in out)
    reassembled = b"".join(data for _seq, data in pieces)
    assert reassembled == bytes(range(256)) * 6
    assert pieces[0][0] == 1000
