"""Adversarial conformance tests for the fault-injection layer.

Pins down the contracts the robustness experiments rely on: flap
windows are absolute (100% drop inside, 0% outside), Gilbert–Elliott
burst statistics match the configured chain, identical seeds replay
identical drop sequences, and every fault/middlebox drop is booked in
the link's loss accounting.
"""

import pytest

from repro.net import Simulator, Scenario, build_faulty_multipath
from repro.net.address import IPAddress
from repro.net.faults import (
    DROP,
    BitCorruption,
    BlackholeFault,
    GilbertElliott,
    LatencySpike,
    LinkFlap,
)
from repro.net.link import Link
from repro.net.middlebox import Blackhole
from repro.net.packet import Packet

pytestmark = pytest.mark.faults


class FakePayload:
    def __init__(self, size, data=b""):
        self.size = size
        self.payload = data

    def wire_size(self):
        return self.size

    def replace(self, payload):
        clone = FakePayload(self.size, payload)
        return clone


def make_packet(size=1480, data=b""):
    return Packet(IPAddress("10.0.0.1"), IPAddress("10.0.0.2"), "tcp",
                  FakePayload(size - 20, data))


def pump(sim, link, times):
    """Send one packet at each time in ``times``; returns arrival times."""
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    for t in times:
        sim.at(t, link.send, make_packet())
    sim.run()
    return arrivals


# -- flap windows --------------------------------------------------------


def test_flap_drops_everything_inside_and_nothing_outside():
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=None, delay=0.0)
    link.add_fault(LinkFlap(windows=[(1.0, 2.0), (3.0, 4.0)]))
    times = [i * 0.1 for i in range(50)]  # 0.0 .. 4.9
    arrivals = pump(sim, link, times)
    inside = [t for t in times if 1.0 <= t < 2.0 or 3.0 <= t < 4.0]
    outside = [t for t in times if t not in inside]
    assert len(arrivals) == len(outside)          # 0% loss outside
    assert link.stats.dropped_packets == len(inside)   # 100% inside
    assert link.stats.dropped_by("flap") == len(inside)


def test_flap_window_boundaries_are_half_open():
    flap = LinkFlap(windows=[(1.0, 2.0)])
    assert not flap.down_at(0.999)
    assert flap.down_at(1.0)
    assert flap.down_at(1.999)
    assert not flap.down_at(2.0)


def test_flap_kills_in_flight_packets():
    """A packet sent before the outage but still in flight when it
    starts must die, exactly like with the Blackhole middlebox."""
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=None, delay=0.5)
    link.add_fault(LinkFlap(windows=[(1.2, 5.0)]))
    arrivals = pump(sim, link, [0.5, 1.0])  # arrive at 1.0, 1.5
    assert arrivals == [pytest.approx(1.0)]
    assert link.stats.dropped_by("flap") == 1


def test_blackhole_fault_is_open_ended():
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=None, delay=0.0)
    link.add_fault(BlackholeFault(start=2.0))
    arrivals = pump(sim, link, [0.0, 1.0, 2.0, 50.0, 1000.0])
    assert arrivals == [pytest.approx(0.0), pytest.approx(1.0)]
    assert link.stats.dropped_by("blackhole") == 3


def test_forced_flap_and_reopen():
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=None, delay=0.0)
    flap = link.add_fault(LinkFlap())
    flap.force(True)
    link.send(make_packet())
    flap.force(False)
    link.send(make_packet())
    sim.run()
    assert link.stats.tx_packets == 1
    assert link.stats.dropped_by("flap") == 1


# -- Gilbert–Elliott ------------------------------------------------------


def ge_drop_sequence(fault, n=1000):
    pkt = make_packet()
    return [fault.filter(pkt, 0.0) is DROP for _ in range(n)]


def test_gilbert_elliott_statistics_match_parameters():
    p_gb, p_bg = 0.05, 0.25
    fault = GilbertElliott(p_gb, p_bg, loss_bad=1.0, seed=42)
    seq = ge_drop_sequence(fault, n=20000)
    # Stationary bad-state share pi_B = p_gb / (p_gb + p_bg).
    expected_loss = p_gb / (p_gb + p_bg)
    observed_loss = sum(seq) / len(seq)
    assert observed_loss == pytest.approx(expected_loss, rel=0.15)
    # Mean bad-state run length is geometric: 1 / p_bg packets.
    assert fault.bursts > 100
    assert fault.mean_burst_length() == pytest.approx(1.0 / p_bg, rel=0.15)


def test_gilbert_elliott_produces_bursts_not_iid_loss():
    """Consecutive drops must be far more common than under i.i.d. loss
    of the same average rate."""
    fault = GilbertElliott(0.02, 0.3, loss_bad=1.0, seed=7)
    seq = ge_drop_sequence(fault, n=20000)
    loss = sum(seq) / len(seq)
    pairs = sum(1 for a, b in zip(seq, seq[1:]) if a and b)
    p_drop_after_drop = pairs / max(sum(seq), 1)
    # i.i.d. would give ~loss (~6%); the chain gives ~1 - p_bg (~70%).
    assert p_drop_after_drop > 3 * loss
    assert p_drop_after_drop == pytest.approx(1.0 - fault.p_bg, abs=0.1)


def test_identical_seeds_identical_drop_sequences():
    a = GilbertElliott(0.05, 0.25, seed=123)
    b = GilbertElliott(0.05, 0.25, seed=123)
    assert ge_drop_sequence(a) == ge_drop_sequence(b)
    c = GilbertElliott(0.05, 0.25, seed=124)
    assert ge_drop_sequence(a) != ge_drop_sequence(c)  # and seeds matter


def test_ge_outside_window_passes_and_freezes_chain():
    fault = GilbertElliott(0.5, 0.1, seed=1, start=10.0, end=20.0)
    pkt = make_packet()
    assert fault.filter(pkt, 9.99) is None
    assert fault.processed == 0  # chain did not advance
    fault.filter(pkt, 10.0)
    assert fault.processed == 1


def test_end_to_end_seed_reproducibility():
    """Two full simulator runs with the same seed produce identical
    link statistics; a different seed does not."""

    def run(seed):
        sim = Simulator(seed=seed)
        link = Link(sim, rate_bps=8_000_000, delay=0.01)
        link.add_fault(GilbertElliott(0.05, 0.25))
        link.add_fault(LatencySpike(0.02, start=0.5, end=1.0))
        got = []
        link.connect(lambda pkt: got.append(round(sim.now, 9)))
        for i in range(500):
            sim.at(i * 0.004, link.send, make_packet())
        sim.run()
        return got, link.stats.dropped_packets, dict(link.stats.drop_reasons)

    assert run(5) == run(5)
    assert run(5) != run(6)


# -- corruption and latency ----------------------------------------------


def test_corruption_drop_mode_counts_as_loss():
    sim = Simulator(seed=2)
    link = Link(sim, rate_bps=None, delay=0.0)
    fault = link.add_fault(BitCorruption(rate=0.3, seed=11))
    n = 2000
    arrivals = pump(sim, link, [i * 0.001 for i in range(n)])
    assert fault.corrupted == link.stats.dropped_by("corruption")
    assert len(arrivals) == n - fault.corrupted
    assert fault.corrupted == pytest.approx(0.3 * n, rel=0.2)


def test_corruption_deliver_mode_flips_exactly_one_bit():
    sim = Simulator(seed=2)
    link = Link(sim, rate_bps=None, delay=0.0)
    link.add_fault(BitCorruption(rate=1.0, mode="deliver", seed=3))
    delivered = []
    link.connect(delivered.append)
    original = bytes(100)
    link.send(make_packet(data=original))
    sim.run()
    assert len(delivered) == 1
    mutated = delivered[0].payload.payload
    diff = [i for i in range(len(original)) if mutated[i] != original[i]]
    assert len(diff) == 1
    xor = mutated[diff[0]] ^ original[diff[0]]
    assert xor and (xor & (xor - 1)) == 0  # exactly one bit


def test_latency_spike_adds_delay_and_keeps_fifo_order():
    sim = Simulator(seed=3)
    link = Link(sim, rate_bps=8_000_000_000, delay=0.010)
    link.add_fault(LatencySpike(0.100, start=0.0, end=0.05))
    arrivals = pump(sim, link, [0.0, 0.06])
    # First packet spiked (+100 ms), second sent after the window would
    # arrive earlier on its own; the FIFO clamp forbids the overtake.
    assert arrivals[0] == pytest.approx(0.110, abs=1e-3)
    assert arrivals[1] >= arrivals[0]


# -- loss accounting (regression for the goodput probes) ------------------


def test_middlebox_and_fault_drops_book_into_link_stats():
    sim = Simulator(seed=4)
    link = Link(sim, rate_bps=None, delay=0.0)
    hole = Blackhole(active=True)
    link.add_middlebox(hole)
    link.send(make_packet(1000))
    sim.run()
    assert link.stats.dropped_packets == 1
    assert link.stats.dropped_bytes == 1000
    assert link.stats.dropped_by("middlebox") == 1
    assert link.stats.tx_packets == 0

    hole.deactivate()
    link.add_fault(LinkFlap(windows=[(0.0, None)]))
    link.send(make_packet(500))
    sim.run()
    assert link.stats.dropped_packets == 2
    assert link.stats.dropped_bytes == 1500
    assert link.stats.dropped_by("flap") == 1


def test_drop_reasons_partition_total_drops():
    sim = Simulator(seed=4)
    link = Link(sim, rate_bps=None, delay=0.0, loss_rate=0.5)
    link.add_fault(BitCorruption(rate=0.2, seed=9))
    pump(sim, link, [i * 0.001 for i in range(1000)])
    assert sum(link.stats.drop_reasons.values()) == link.stats.dropped_packets
    assert link.stats.dropped_by("loss") > 0
    assert link.stats.dropped_by("corruption") > 0


# -- scenario DSL ---------------------------------------------------------


def test_scenario_flap_window_via_at():
    sim = Simulator(seed=5)
    link = Link(sim, rate_bps=None, delay=0.0)
    Scenario().at(1.0).flap(link, duration=1.0).install(sim)
    times = [0.5, 1.5, 2.5]
    arrivals = pump(sim, link, times)
    assert arrivals == [pytest.approx(0.5), pytest.approx(2.5)]


def test_scenario_between_loss_restores_previous_rate():
    sim = Simulator(seed=5)
    link = Link(sim, rate_bps=None, delay=0.0, loss_rate=0.0)
    scenario = Scenario().install(sim)
    scenario.between(1.0, 2.0).loss(link, 1.0)
    arrivals = pump(sim, link, [0.5, 1.5, 2.5])
    assert link.loss_rate == 0.0
    assert arrivals == [pytest.approx(0.5), pytest.approx(2.5)]
    assert link.stats.dropped_by("loss") == 1


def test_scenario_directives_queue_until_install():
    sim = Simulator(seed=5)
    fired = []
    scenario = Scenario()
    scenario.at(1.0).call(fired.append, "a")
    scenario.every(1.0, start=2.0, until=4.0).call(fired.append, "b")
    assert not fired
    scenario.install(sim)
    sim.run(until=10.0)
    assert fired == ["a", "b", "b", "b"]
    assert [t for t, _label in scenario.log] == [1.0, 2.0, 3.0, 4.0]


def test_scenario_applies_to_both_directions_of_a_path():
    sim = Simulator(seed=6)
    topo = build_faulty_multipath(sim, n_paths=2)
    topo.flap_path(0, at=0.0, duration=1.0)
    p0 = topo.path(0)
    assert topo.scenario.flap_fault(p0.c2s).down_at(0.5)
    assert topo.scenario.flap_fault(p0.s2c).down_at(0.5)
    assert not topo.scenario.flap_fault(p0.c2s).down_at(1.5)
    p1 = topo.path(1)
    assert not p1.c2s.faults  # untouched path has no scenario flap


# -- segment trains through faults and middleboxes -----------------------


def pump_trains(sim, link, times, batch=8):
    """Like :func:`pump` but sends in ``batch``-sized trains."""
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    for i in range(0, len(times), batch):
        chunk = times[i:i + batch]
        sim.at(chunk[0], link.send_train,
               [make_packet() for _ in chunk])
    sim.run()
    return arrivals


def test_train_corruption_drops_match_per_packet_sends():
    """BitCorruption admission runs per packet inside a train with the
    same RNG draw order as individual sends: identical seeds must drop
    the same packets and deliver at the same times either way."""

    def send_individually(link, packets):
        for packet in packets:
            link.send(packet)

    def run(trains):
        sim = Simulator(seed=2)
        link = Link(sim, rate_bps=80_000_000, delay=0.002)
        fault = link.add_fault(BitCorruption(rate=0.3, seed=11))
        arrivals = []
        link.connect(lambda pkt: arrivals.append(sim.now))
        for i in range(25):  # 25 bursts of 8
            burst = [make_packet() for _ in range(8)]
            if trains:
                sim.at(i * 0.01, link.send_train, burst)
            else:
                sim.at(i * 0.01, send_individually, link, burst)
        sim.run()
        return arrivals, fault.corrupted, link.stats.dropped_packets

    assert run(trains=True) == run(trains=False)


def test_train_survivors_keep_serialization_spacing():
    """Dropped entries must not leave holes in the wire schedule: the
    survivors of a corrupted train stay spaced by serialization time."""
    sim = Simulator(seed=3)
    rate = 8_000_000  # 1480 B -> 1.48 ms per packet
    link = Link(sim, rate_bps=rate, delay=0.0)
    link.add_fault(BitCorruption(rate=0.4, seed=5))
    arrivals = pump_trains(sim, link, [0.0] * 32, batch=32)
    assert 0 < len(arrivals) < 32  # some died, some survived
    ser = 1480 * 8.0 / rate
    for a, b in zip(arrivals, arrivals[1:]):
        assert b - a == pytest.approx(ser, rel=1e-9)


def test_train_through_rewriting_middlebox():
    """Every packet of a train passes the middlebox individually; a
    rewriting box must see and rewrite each one, in order."""

    class Rewriter:
        def __init__(self):
            self.seen = 0

        def attach(self, link):
            pass

        def process(self, packet):
            self.seen += 1
            packet.payload = packet.payload.replace(
                b"rewritten-%d" % self.seen)
            return packet

    sim = Simulator(seed=4)
    link = Link(sim, rate_bps=8_000_000, delay=0.001)
    box = Rewriter()
    link.add_middlebox(box)
    delivered = []
    link.connect(delivered.append)
    sim.at(0.0, link.send_train,
           [make_packet(data=b"original") for _ in range(6)])
    sim.run()
    assert box.seen == 6
    assert [p.payload.payload for p in delivered] == [
        b"rewritten-%d" % (i + 1) for i in range(6)]


def test_train_through_dropping_middlebox_books_drops():
    """A blackhole at delivery kills each train entry individually and
    books every drop in the link stats."""
    sim = Simulator(seed=4)
    link = Link(sim, rate_bps=None, delay=0.0)
    link.add_middlebox(Blackhole(active=True))
    delivered = []
    link.connect(delivered.append)
    sim.at(0.0, link.send_train, [make_packet(1000) for _ in range(5)])
    sim.run()
    assert delivered == []
    assert link.stats.dropped_by("middlebox") == 5
    assert link.stats.dropped_bytes == 5000


def test_train_inflight_outage_kills_unfired_deliveries():
    """An outage that starts mid-train must kill the entries still in
    flight, just as it kills individually scheduled packets."""
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=8_000_000, delay=0.0)  # 1.48 ms/packet
    link.add_fault(LinkFlap(windows=[(0.004, 1.0)]))
    delivered = []
    link.connect(delivered.append)
    sim.at(0.0, link.send_train, [make_packet() for _ in range(6)])
    sim.run()
    # Packets arriving at ~1.48/2.96 ms survive; >= 4.44 ms die.
    assert len(delivered) == 2
    assert link.stats.dropped_by("flap") == 4


def test_rotate_working_keeps_exactly_one_path_up():
    sim = Simulator(seed=6)
    topo = build_faulty_multipath(sim, n_paths=3)
    topo.rotate_working(1.0)
    for probe_t, expect_up in [(0.5, 0), (1.5, 1), (2.5, 2), (3.5, 0)]:
        sim.run(until=probe_t)
        states = [topo.scenario.flap_fault(p.c2s).forced_down
                  for p in topo.paths]
        assert states == [i != expect_up for i in range(3)]
