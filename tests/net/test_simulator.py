"""Event loop: ordering, cancellation, determinism."""

import pytest

from repro.net import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.5, fired.append, "b")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.9, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(0.9)


def test_equal_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.at(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    keep = sim.schedule(0.2, fired.append, "keep")
    drop = sim.schedule(0.1, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert fired == ["early", "late"]


def test_scheduling_into_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        sim.run(until=10.0, max_events=50)


def test_rng_determinism():
    values_a = [Simulator(seed=42).rng.random() for _ in range(3)]
    values_b = [Simulator(seed=42).rng.random() for _ in range(3)]
    assert values_a == values_b


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1
