"""Event loop: ordering, cancellation, determinism."""

import pytest

from repro.net import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.5, fired.append, "b")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.9, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(0.9)


def test_equal_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.at(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    keep = sim.schedule(0.2, fired.append, "keep")
    drop = sim.schedule(0.1, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.cancelled is False


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert fired == ["early", "late"]


def test_scheduling_into_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        sim.run(until=10.0, max_events=50)


def test_rng_determinism():
    values_a = [Simulator(seed=42).rng.random() for _ in range(3)]
    values_b = [Simulator(seed=42).rng.random() for _ in range(3)]
    assert values_a == values_b


def test_pending_events_counts_uncancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1


def test_pending_events_is_o1_counter():
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    for event in events[:4]:
        event.cancel()
    assert sim.pending_events == 6
    events[0].cancel()  # idempotent: must not double-count
    assert sim.pending_events == 6


def test_cancel_after_firing_is_harmless():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    sim.run()
    event.cancel()
    event.cancel()
    assert sim.pending_events == 0


def test_compaction_drops_cancelled_events():
    from repro.net.simulator import _COMPACT_MIN_CANCELLED

    sim = Simulator()
    total = 2 * _COMPACT_MIN_CANCELLED + 10
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(total)]
    for event in events[:_COMPACT_MIN_CANCELLED + 5]:
        event.cancel()
    assert sim.compactions >= 1
    assert len(sim._queue) == total - (_COMPACT_MIN_CANCELLED + 5)
    assert sim.pending_events == total - (_COMPACT_MIN_CANCELLED + 5)


def test_compaction_preserves_firing_order():
    from repro.net.simulator import _COMPACT_MIN_CANCELLED

    n = 3 * _COMPACT_MIN_CANCELLED
    expected_sim = Simulator()
    expected = []
    for i in range(n):
        expected_sim.schedule((i * 37 % 11) / 10.0, expected.append, i)
    expected_sim.run()

    sim = Simulator()
    fired = []
    keepers = []
    for i in range(n):
        keepers.append(sim.schedule((i * 37 % 11) / 10.0, fired.append, i))
        # interleave churn that forces at least one compaction
        sim.schedule(0.05, lambda: None).cancel()
    assert sim.compactions >= 1
    sim.run()
    assert fired == expected


def test_compaction_emits_perf_event():
    from repro.net.simulator import _COMPACT_MIN_CANCELLED
    from repro.obs.bus import CaptureSink

    sim = Simulator()
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=["perf"])
    events = [sim.schedule(1.0 + i, lambda: None)
              for i in range(2 * _COMPACT_MIN_CANCELLED)]
    for event in events[:_COMPACT_MIN_CANCELLED + 1]:
        event.cancel()
    compactions = [e for e in sink.events if e.name == "heap_compaction"]
    assert compactions
    data = compactions[-1].data
    assert data["before"] > data["after"]


# -- train events ---------------------------------------------------------


def test_at_train_fires_in_per_event_order():
    """A train must fire exactly like the equivalent individual at()
    calls, including interleaving with independently scheduled events
    (seq draws decide ties at equal times)."""

    def run(trains):
        sim = Simulator()
        fired = []
        sim.at(0.05, fired.append, "solo-early")
        entries = [(0.02 * i, "train-%d" % i) for i in range(1, 6)]
        if trains:
            sim.at_train(entries, fired.append)
        else:
            for t, payload in entries:
                sim.at(t, fired.append, payload)
        sim.at(0.05, fired.append, "solo-late")
        sim.run()
        return fired

    assert run(trains=True) == run(trains=False)
    # And the tie at t=0.05 lands between the two solo events.
    assert run(trains=True).index("train-2") < \
        run(trains=True).index("solo-late")


def test_at_train_splits_on_backwards_times():
    """Non-monotonic entry times split the train; the heap restores
    global firing order across the splits."""
    sim = Simulator()
    fired = []
    events = sim.at_train(
        [(0.3, "a"), (0.4, "b"), (0.1, "c"), (0.2, "d")], fired.append)
    assert len(events) == 2
    sim.run()
    assert fired == ["c", "d", "a", "b"]


def test_train_cancel_drops_unfired_deliveries():
    sim = Simulator()
    fired = []
    (event,) = sim.at_train(
        [(0.1 * i, i) for i in range(1, 6)], fired.append)
    sim.at(0.25, event.cancel)
    sim.run()
    assert fired == [1, 2]
    assert sim.pending_events == 0


def test_train_cancel_from_inside_a_delivery():
    """A delivery callback cancelling its own train stops the peel
    immediately and settles the pending tally."""
    sim = Simulator()
    fired = []
    holder = {}

    def deliver(payload):
        fired.append(payload)
        if payload == 2:
            holder["event"].cancel()

    (holder["event"],) = sim.at_train(
        [(0.1 * i, i) for i in range(1, 6)], deliver)
    sim.run()
    assert fired == [1, 2]
    assert sim.pending_events == 0


def test_pending_events_counts_train_entries():
    sim = Simulator()
    sim.at_train([(0.1 * i, i) for i in range(1, 9)], lambda _p: None)
    sim.at(1.0, lambda: None)
    # 8 deliveries inside one heap entry, plus the solo event.
    assert sim.pending_events == 9
    assert sim.trains_scheduled == 1
    sim.run()
    assert sim.pending_events == 0


def test_uncontended_train_peels_without_heap_traffic():
    sim = Simulator()
    fired = []
    sim.at_train([(0.1 * i, i) for i in range(1, 9)], fired.append)
    sim.run()
    assert fired == list(range(1, 9))
    # Head pops once; the 7 followers peel inline.
    assert sim.train_peels == 7


def test_contended_train_reenters_heap_for_interleaved_event():
    sim = Simulator()
    fired = []
    sim.at_train([(0.1, "t1"), (0.3, "t2")], fired.append)
    sim.at(0.2, fired.append, "solo")
    sim.run()
    assert fired == ["t1", "solo", "t2"]
    assert sim.train_peels == 0  # the follower had to re-enter the heap


def test_min_compact_is_per_instance():
    from repro.net.simulator import MIN_COMPACT

    # An aggressive threshold compacts after a handful of cancels...
    eager = Simulator(min_compact=4)
    assert eager.min_compact == 4
    events = [eager.schedule(1.0 + i, lambda: None) for i in range(10)]
    for event in events[:5]:
        event.cancel()
    assert eager.compactions >= 1

    # ...while the default instance keeps the module-level threshold
    # and stays untouched by the other instance's setting.
    lazy = Simulator()
    assert lazy.min_compact == MIN_COMPACT
    events = [lazy.schedule(1.0 + i, lambda: None) for i in range(10)]
    for event in events[:5]:
        event.cancel()
    assert lazy.compactions == 0
