"""Scenario smoke runs of the Fig. 8 / Fig. 9 benchmarks.

Runs the two outage benchmarks in fast mode (1 MiB transfers, outages
pulled forward) so a regression in the scenario plumbing fails loudly
in the ordinary test suite, and asserts the acceptance criterion for
the fault layer: identical seeds produce identical metrics — goodput
series, completion times and per-link drop accounting — across two
runs of the same scripted outage.

Select just these (plus the rest of the fault suite) with
``pytest -m faults``; ``-m smoke`` narrows to the bench runs alone.
"""

import os
import sys

import pytest

pytestmark = [pytest.mark.faults, pytest.mark.smoke]

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_fig8_failover as fig8    # noqa: E402
import bench_fig9_outages as fig9     # noqa: E402

SMOKE_SIZE = 1 << 20


@pytest.fixture(autouse=True)
def fast_mode(monkeypatch):
    """Shrink the experiments so each run takes well under a second of
    wall clock while still exercising the scripted outage mid-transfer."""
    monkeypatch.setattr(fig8, "SIZE", SMOKE_SIZE)
    monkeypatch.setattr(fig9, "SIZE", 4 * SMOKE_SIZE)
    monkeypatch.setattr(fig9, "HORIZON", 20.0)


def test_fig8_blackhole_scenario_is_deterministic():
    runs = [fig8.run_tcpls("blackhole", outage_at=0.3) for _ in range(2)]
    series, finished = runs[0]
    assert runs[0] == runs[1]
    assert finished is not None and finished > 0.3  # outage bit mid-run


def test_fig8_rst_scenario_is_deterministic():
    runs = [fig8.run_tcpls("rst", outage_at=0.3) for _ in range(2)]
    assert runs[0] == runs[1]
    assert runs[0][1] is not None


def test_fig8_mptcp_scenario_is_deterministic():
    runs = [fig8.run_mptcp("blackhole", outage_at=0.3) for _ in range(2)]
    assert runs[0] == runs[1]


def test_fig9_rotating_outage_scenario_is_deterministic():
    runs = [fig9.run_tcpls(rotate_every=1.0) for _ in range(2)]
    (series_a, done_a, total_a), (series_b, done_b, total_b) = runs
    assert series_a == series_b
    assert done_a == done_b
    assert total_a == total_b
    assert total_a >= 4 * SMOKE_SIZE      # the transfer completed
    assert done_a is not None and done_a > 1.0  # survived >=1 rotation
