"""Unit and property tests for the fluid fast-forward layer.

The solver (:func:`~repro.net.fluid.max_min_shares`) is a pure
function, so hypothesis can hammer it with random flow populations and
assert the water-filling invariants directly; the engine tests check
the closed-form leap against hand-computed completion times and fault
boundaries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Simulator
from repro.net.faults import LinkFlap
from repro.net.fluid import (
    EPS,
    FluidCohort,
    FluidEngine,
    SLOW_START,
    STEADY,
    link_capacity_bps,
    link_next_change,
    max_min_shares,
)
from repro.net.link import Link

pytestmark = pytest.mark.fluid


def make_link(sim, rate_bps=8_000_000, delay=0.01, name="l"):
    return Link(sim, rate_bps=rate_bps, delay=delay, name=name)


# -- solver -------------------------------------------------------------


def test_equal_weights_split_bottleneck_evenly():
    shares = max_min_shares(
        [("a", ["L"], 1, 1.0, None), ("b", ["L"], 1, 1.0, None)],
        lambda link: 100.0)
    assert shares["a"] == pytest.approx(50.0)
    assert shares["b"] == pytest.approx(50.0)


def test_weights_bias_shares_proportionally():
    shares = max_min_shares(
        [("fast", ["L"], 1, 2.0, None), ("slow", ["L"], 1, 1.0, None)],
        lambda link: 90.0)
    assert shares["fast"] == pytest.approx(60.0)
    assert shares["slow"] == pytest.approx(30.0)


def test_cap_binds_and_leftover_goes_to_greedy_flows():
    shares = max_min_shares(
        [("capped", ["L"], 1, 1.0, 10.0), ("greedy", ["L"], 1, 1.0, None)],
        lambda link: 100.0)
    assert shares["capped"] == pytest.approx(10.0)
    assert shares["greedy"] == pytest.approx(90.0)


def test_cohort_size_scales_link_usage():
    # 9 flows vs 1 flow, same weight each: per-flow shares are equal,
    # so the big cohort takes 9x the link.
    shares = max_min_shares(
        [("big", ["L"], 9, 1.0, None), ("small", ["L"], 1, 1.0, None)],
        lambda link: 100.0)
    assert shares["big"] == pytest.approx(10.0)
    assert shares["small"] == pytest.approx(10.0)


def test_dead_link_flows_get_zero_and_free_the_rest():
    shares = max_min_shares(
        [("dead", ["L", "D"], 1, 1.0, None), ("live", ["L"], 1, 1.0, None)],
        lambda link: 0.0 if link == "D" else 100.0)
    assert shares["dead"] == 0.0
    assert shares["live"] == pytest.approx(100.0)


def test_classic_multi_bottleneck_max_min():
    # f1 crosses only A (cap 10 shared with f2); f2 crosses A and B;
    # f3 crosses only B (cap 30).  Max-min: f1 = f2 = 5 on A, then f3
    # soaks up B's residual 25.
    shares = max_min_shares(
        [("f1", ["A"], 1, 1.0, None),
         ("f2", ["A", "B"], 1, 1.0, None),
         ("f3", ["B"], 1, 1.0, None)],
        lambda link: 10.0 if link == "A" else 30.0)
    assert shares["f1"] == pytest.approx(5.0)
    assert shares["f2"] == pytest.approx(5.0)
    assert shares["f3"] == pytest.approx(25.0)


def test_uncapped_flows_on_infinite_links_are_unconstrained():
    shares = max_min_shares(
        [("inf", ["L"], 1, 1.0, None)], lambda link: float("inf"))
    assert shares["inf"] == float("inf")


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_max_min_conservation_and_bottlenecks(data):
    """Random populations: no link over capacity, every flow limited
    by its cap or by a saturated link, all rates non-negative."""
    n_links = data.draw(st.integers(1, 5), label="n_links")
    capacities = {
        i: data.draw(st.floats(1.0, 1000.0), label="cap%d" % i)
        for i in range(n_links)
    }
    n_flows = data.draw(st.integers(1, 8), label="n_flows")
    entries = []
    for f in range(n_flows):
        links = data.draw(
            st.lists(st.integers(0, n_links - 1), min_size=1,
                     max_size=n_links, unique=True),
            label="links%d" % f)
        count = data.draw(st.integers(1, 50), label="n%d" % f)
        weight = data.draw(st.floats(0.1, 10.0), label="w%d" % f)
        cap = data.draw(st.one_of(st.none(), st.floats(0.1, 100.0)),
                        label="cap_f%d" % f)
        entries.append(("flow%d" % f, links, count, weight, cap))

    shares = max_min_shares(entries, lambda link: capacities[link])

    tol = 1e-6
    load = {i: 0.0 for i in range(n_links)}
    for key, links, count, weight, cap in entries:
        rate = shares[key]
        assert rate >= 0.0
        if cap is not None:
            assert rate <= cap + tol * max(1.0, cap)
        for link in links:
            load[link] += count * rate
    for link, used in load.items():
        assert used <= capacities[link] * (1.0 + 1e-5) + tol
    # Bottleneck property: every uncapped flow with rate below every
    # link's fair ceiling must cross at least one saturated link.
    for key, links, count, weight, cap in entries:
        rate = shares[key]
        if cap is not None and rate >= cap - tol * max(1.0, cap):
            continue
        assert any(load[link] >= capacities[link] * (1.0 - 1e-4)
                   for link in links), (
            "flow %s is limited by neither cap nor bottleneck" % key)


# -- link capacity / schedule views ------------------------------------


def test_link_capacity_respects_flap_windows_and_up_flag():
    sim = Simulator()
    link = make_link(sim)
    assert link_capacity_bps(link, 0.0) == 8_000_000.0
    flap = LinkFlap()
    link.add_fault(flap)
    flap.add_window(1.0, 2.0)
    assert link_capacity_bps(link, 1.5) == 0.0
    assert link_capacity_bps(link, 2.5) == 8_000_000.0
    assert link_next_change(link, 0.0) == 1.0
    assert link_next_change(link, 1.0) == 2.0
    assert link_next_change(link, 2.0) is None
    link.set_up(False)
    assert link_capacity_bps(link, 0.0) == 0.0


# -- engine -------------------------------------------------------------


def test_single_cohort_completes_at_analytic_time():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)       # 1 MB/s
    engine = FluidEngine(sim)
    done = []
    cohort = FluidCohort([link], [500_000.0], rtt=0.02)
    cohort.on_all_done = lambda c: done.append(sim.now)
    engine.add_cohort(cohort)
    sim.run(until=10.0)
    assert done and done[0] == pytest.approx(0.5, rel=1e-6)
    assert engine.flows_completed == 1
    assert engine.leaps >= 1
    # The whole transfer was one leap: no per-packet event storm.
    assert engine.events <= 3
    assert link.stats.tx_bytes == pytest.approx(500_000, abs=2)


def test_cohort_completions_pop_in_size_order():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)
    engine = FluidEngine(sim)
    completions = []
    cohort = FluidCohort([link], [100.0, 200.0, 200.0, 400.0], rtt=0.02)
    cohort.on_flow_complete = (
        lambda c, newly: completions.append((sim.now, newly)))
    engine.add_cohort(cohort)
    sim.run(until=10.0)
    assert sum(n for _, n in completions) == 4
    times = [t for t, _ in completions]
    assert times == sorted(times)
    assert cohort.done
    assert cohort.total_remaining() == 0.0


def test_two_cohorts_share_then_second_speeds_up():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)       # 1 MB/s
    engine = FluidEngine(sim)
    done = {}
    a = FluidCohort([link], [100_000.0], rtt=0.02, label="a")
    b = FluidCohort([link], [200_000.0], rtt=0.02, label="b")
    a.on_all_done = lambda c: done.setdefault("a", sim.now)
    b.on_all_done = lambda c: done.setdefault("b", sim.now)
    engine.add_cohort(a)
    engine.add_cohort(b)
    sim.run(until=10.0)
    # Equal shares (500 KB/s each) until a finishes at 0.2s with b at
    # 100 KB served; b's remaining 100 KB then runs at full 1 MB/s.
    assert done["a"] == pytest.approx(0.2, rel=1e-6)
    assert done["b"] == pytest.approx(0.3, rel=1e-6)


def test_slow_start_doubles_until_cap_stops_binding():
    sim = Simulator()
    link = make_link(sim, rate_bps=80_000_000)      # 10 MB/s
    engine = FluidEngine(sim)
    cohort = FluidCohort([link], [10_000_000.0], rtt=0.1, cwnd=100_000.0)
    engine.add_cohort(cohort)
    assert cohort.phase == SLOW_START
    assert cohort.rate == pytest.approx(1_000_000.0)  # cwnd/rtt caps it
    sim.run(until=0.25)
    # Two doublings later the cap (4 MB/s) still binds...
    assert cohort.phase == SLOW_START
    assert cohort.rate == pytest.approx(4_000_000.0)
    sim.run(until=0.55)
    # ...until cwnd/rtt exceeds the link and the cohort exits to
    # steady state at the link rate.
    assert cohort.phase == STEADY
    assert cohort.rate == pytest.approx(10_000_000.0)
    assert cohort.next_double is None


def test_flap_window_stalls_and_resumes_with_slow_start_restart():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)
    flap = LinkFlap()
    link.add_fault(flap)
    flap.add_window(0.1, 0.3)
    engine = FluidEngine(sim)
    stalls = []
    resumes = []
    cohort = FluidCohort([link], [1_000_000.0], rtt=0.02, cwnd=1e12)
    cohort.phase = STEADY       # pretend it converged long ago
    cohort.on_stall = lambda c: stalls.append(sim.now)
    cohort.on_resume = lambda c: resumes.append(sim.now)
    done = []
    cohort.on_all_done = lambda c: done.append(sim.now)
    engine.add_cohort(cohort)
    sim.run(until=10.0)
    assert stalls == [pytest.approx(0.1)]
    assert resumes == [pytest.approx(0.3)]
    # Only 0.1s of service before the outage: 100 KB served.  The
    # resume restarts slow start from the initial window, so completion
    # lands strictly after the no-loss-of-state bound (0.3 + 0.9/1.0)
    # but within a few RTTs of it.
    assert done and 1.2 < done[0] < 1.3
    assert engine.stalls == 1
    # Progress time freezes at the stall point during the outage.
    sim2_probe = engine.progress_time(cohort)
    assert sim2_probe == sim.now    # healthy again by the end


def test_forced_flap_notifies_engine_immediately():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)
    flap = LinkFlap()
    link.add_fault(flap)
    engine = FluidEngine(sim)
    cohort = FluidCohort([link], [10_000_000.0], rtt=0.02)
    engine.add_cohort(cohort)
    sim.schedule(0.25, flap.force, True)
    sim.run(until=0.5)
    assert cohort.stalled_at == pytest.approx(0.25)
    # Exactly 0.25s of full-rate service was booked before the cut.
    assert cohort.served == pytest.approx(250_000.0, rel=1e-6)
    sim.schedule(0.1, flap.force, False)
    sim.run(until=1.0)
    assert cohort.stalled_at is None
    assert cohort.rate > 0.0


def test_set_up_false_touches_engine():
    sim = Simulator()
    link = make_link(sim)
    engine = FluidEngine(sim)
    cohort = FluidCohort([link], [10_000_000.0], rtt=0.02)
    engine.add_cohort(cohort)
    sim.schedule(0.5, link.set_up, False)
    sim.run(until=1.0)
    assert cohort.stalled_at == pytest.approx(0.5)


def test_add_bytes_extends_a_single_flow_cohort():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)
    engine = FluidEngine(sim)
    done = []
    cohort = FluidCohort([link], [100_000.0], rtt=0.02)
    cohort.on_all_done = lambda c: done.append(sim.now)
    engine.add_cohort(cohort)
    def extend():
        cohort.add_bytes(100_000)
        engine.touch()
    sim.schedule(0.05, extend)
    sim.run(until=10.0)
    assert done and done[0] == pytest.approx(0.2, rel=1e-6)
    with pytest.raises(ValueError):
        FluidCohort([link], [1.0, 2.0], rtt=0.02).add_bytes(5)


def test_leap_counters_report_fast_forward_coverage():
    sim = Simulator()
    link = make_link(sim, rate_bps=8_000_000)
    engine = FluidEngine(sim)
    engine.add_cohort(FluidCohort([link], [1_000_000.0], rtt=0.02))
    sim.run(until=10.0)
    assert sim.fluid_leaps == engine.leaps >= 1
    assert sim.fluid_leapt_time == pytest.approx(engine.leapt_time)
    assert engine.leapt_time == pytest.approx(1.0, rel=1e-6)


def test_simulator_without_engine_reports_zero_fluid_counters():
    sim = Simulator()
    assert sim.fluid is None
    assert sim.fluid_leaps == 0
    assert sim.fluid_leapt_time == 0.0
