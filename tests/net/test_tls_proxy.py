"""The TLS-terminating proxy of Sec. 5.2, as a real relay node."""

from helpers import PSK

from repro.core import TcplsClient, TcplsServer
from repro.core import record as rec
from repro.net import Simulator
from repro.net.address import Endpoint, IPAddress
from repro.net.host import Host
from repro.net.link import duplex_link
from repro.net.proxy import TlsTerminatingProxy
from repro.tcp import TcpStack


def proxied_network():
    """client -- proxy (transparently owning the server's address) --
    origin server."""
    sim = Simulator(seed=52)
    client = Host(sim, "client")
    proxy = Host(sim, "proxy")
    origin = Host(sim, "origin")

    c_addr = IPAddress("10.0.0.1")
    fake_server = IPAddress("10.0.0.2")      # proxy impersonates this
    p_up = IPAddress("10.1.0.1")
    o_addr = IPAddress("10.1.0.2")

    c2p, p2c = duplex_link(sim, client, proxy, rate_bps=25_000_000,
                           delay=0.005)
    p2o, o2p = duplex_link(sim, proxy, origin, rate_bps=25_000_000,
                           delay=0.005)
    ci = client.add_interface("c0", c_addr, tx_link=c2p)
    client.add_route(fake_server, ci)
    pi_down = proxy.add_interface("p0", fake_server, tx_link=p2c)
    pi_up = proxy.add_interface("p1", p_up, tx_link=p2o)
    proxy.add_route(c_addr, pi_down)
    proxy.add_route(o_addr, pi_up)
    oi = origin.add_interface("o0", o_addr, tx_link=o2p)
    origin.add_route(p_up, oi)

    cstack = TcpStack(sim, client)
    pstack = TcpStack(sim, proxy)
    ostack = TcpStack(sim, origin)
    return sim, (c_addr, fake_server, o_addr), cstack, pstack, ostack


def test_proxy_triggers_tcpls_fallback_and_relays_data():
    sim, (c_addr, fake_server, o_addr), cstack, pstack, ostack = \
        proxied_network()
    server = TcplsServer(sim, ostack, 443, psk=PSK)
    sessions = []
    origin_rx = bytearray()

    def on_session(sess):
        sessions.append(sess)

        def on_stream_data(stream):
            data = stream.recv()
            origin_rx.extend(data)
            reply = b"resp:" + data[:16]
            sess._send_typed(sess.conns[0], rec.RECORD_TYPE_APPDATA,
                             reply, stream=sess.conns[0].control_stream)
        sess.on_stream_data = on_stream_data

    server.on_session = on_session
    proxy = TlsTerminatingProxy(sim, pstack, 443,
                                Endpoint(o_addr, 443), psk=PSK)

    client = TcplsClient(sim, cstack, psk=PSK)
    client_rx = bytearray()
    client.on_stream_data = lambda st: client_rx.extend(st.recv())
    client.connect(c_addr, Endpoint(fake_server, 443))
    sim.run(until=2)

    # The paper's observed behaviour: the handshake completes, but the
    # proxy answered the ClientHello itself, so TCPLS is not negotiated.
    assert client.ready
    assert not client.tcpls_enabled
    assert proxy.sessions == 1

    # Plain-TLS application data still flows end to end through the two
    # re-encrypted legs.
    payload = b"through-the-proxy" * 200
    client._send_typed(client.conns[0], rec.RECORD_TYPE_APPDATA, payload,
                       stream=client.conns[0].control_stream)
    sim.run(until=sim.now + 2)
    assert bytes(origin_rx) == payload
    assert bytes(client_rx) == b"resp:" + payload[:16]
    assert proxy.relayed_client_to_origin >= len(payload)
    # The origin saw the proxy, not the client.
    assert str(sessions[0].conns[0].tcp.remote.addr) == "10.1.0.1"


def test_proxy_sessions_cannot_join():
    """Behind a TLS-terminating proxy the session is plain TLS: joins
    (which need the TCPLS cookie machinery) are unavailable."""
    import pytest

    sim, (c_addr, fake_server, o_addr), cstack, pstack, ostack = \
        proxied_network()
    TcplsServer(sim, ostack, 443, psk=PSK)
    TlsTerminatingProxy(sim, pstack, 443, Endpoint(o_addr, 443), psk=PSK)
    client = TcplsClient(sim, cstack, psk=PSK)
    client.connect(c_addr, Endpoint(fake_server, 443))
    sim.run(until=2)
    assert client.ready and not client.tcpls_enabled
    with pytest.raises(RuntimeError):
        client.join(c_addr)
