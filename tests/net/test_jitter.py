"""Link jitter: randomised delivery that never reorders the pipe."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Simulator
from repro.net.address import IPAddress
from repro.net.link import Link
from repro.net.packet import Packet


class Tagged:
    def __init__(self, tag, size=1000):
        self.tag = tag
        self.size = size

    def wire_size(self):
        return self.size


def send_many(jitter, count=200, seed=5):
    sim = Simulator(seed=seed)
    link = Link(sim, rate_bps=8_000_000, delay=0.01, jitter=jitter,
                queue_bytes=10_000_000)
    arrivals = []
    link.connect(lambda pkt: arrivals.append((sim.now, pkt.payload.tag)))
    src, dst = IPAddress("10.0.0.1"), IPAddress("10.0.0.2")
    for tag in range(count):
        sim.at(tag * 0.0005, link.send,
               Packet(src, dst, "tcp", Tagged(tag)))
    sim.run()
    return arrivals


def test_zero_jitter_is_deterministic():
    assert send_many(0.0, seed=1) == send_many(0.0, seed=2)


def test_jitter_changes_timing_but_not_order():
    base = send_many(0.0)
    jittered = send_many(0.005)
    assert [tag for _t, tag in jittered] == [tag for _t, tag in base]
    assert [t for t, _tag in jittered] != [t for t, _tag in base]


@settings(max_examples=30)
@given(st.floats(0.0, 0.02), st.integers(0, 1000))
def test_property_fifo_order_always_preserved(jitter, seed):
    arrivals = send_many(jitter, count=60, seed=seed)
    tags = [tag for _t, tag in arrivals]
    assert tags == sorted(tags)
    times = [t for t, _tag in arrivals]
    assert times == sorted(times)
