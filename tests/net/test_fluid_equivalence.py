"""Fluid-vs-packet equivalence on the fig7/fig8/fig9 shapes.

Runs the same seeded download twice -- once pure packet-level, once
with the bulk bytes riding the fluid fast-forward engine -- and
asserts the hybrid contract:

* **bytes are exact**: both modes deliver the identical byte total
  (the 1%% acceptance tolerance is trivially met);
* **discrete events are exact**: handshakes, joins, connection
  failures, failovers, SYNCs and stream closes stay packet-level in
  fluid mode, so both endpoints emit the *same ordered sequence* of
  session/recovery events (record-level events are excluded by
  construction: sealing fewer records is the whole point);
* **completion times agree** within the documented tolerance
  (DESIGN.md section 8): the fluid model serves at the converged fair
  share immediately instead of replaying every cwnd oscillation.
"""

import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import common    # noqa: E402

from repro.net import Simulator, build_faulty_multipath    # noqa: E402
from repro.net.fluid import attach_download_fluid          # noqa: E402
from repro.obs.bus import CaptureSink                      # noqa: E402

pytestmark = pytest.mark.fluid

SIZE = 4 << 20

#: the discrete-event vocabulary both modes must agree on, with the
#: payload fields that are mode-independent (timestamps and record
#: counters are not).
KEEP = {
    ("session", "ready"): (),
    ("session", "conn_established"): ("conn",),
    ("session", "conn_failed"): ("conn",),
    ("session", "join"): ("conn",),
    ("session", "failover_enabled"): (),
    ("session", "stream_created"): ("stream",),
    ("session", "stream_steered"): ("stream",),
    ("session", "stream_closed"): ("stream",),
    ("session", "closed"): (),
    ("recovery", "failover"): ("from", "to"),
    ("recovery", "failover_pending"): ("conn",),
    ("recovery", "sync_received"): ("failed",),
}


def event_sequences(sink):
    """Per-role ordered (name, fields) sequences of the kept events."""
    out = {"client": [], "server": []}
    for event in sink.events:
        spec = KEEP.get((event.category, event.name))
        if spec is None:
            continue
        fields = tuple((f, event.data.get(f)) for f in spec)
        out[event.data["role"]].append((event.name, fields))
    return out


def run_download(mode, fault=None, size=SIZE, uto=0.25,
                 client_kwargs=None, auto_uto=None, horizon=40.0):
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    sink = CaptureSink()
    sim.bus.subscribe(sink, categories=["session", "recovery"])
    client, sessions, probe, done = common.build_tcpls_download(
        sim, topo, size, uto=uto, client_kwargs=client_kwargs)
    if auto_uto is not None:
        client.auto_user_timeout = auto_uto
    if fault is not None:
        fault(topo)
    if mode == "fluid":
        def try_attach():
            if sessions and client.ready:
                attach_download_fluid(sim, topo, sessions[0], client)
            else:
                sim.schedule(0.005, try_attach)
        sim.schedule(0.0, try_attach)
    sim.run(until=horizon)
    return {
        "bytes": probe.total,
        "done": done[0] if done else None,
        "events": event_sequences(sink),
        "leaps": sim.fluid_leaps,
        "leapt_time": sim.fluid_leapt_time,
        "failovers": sum(s.stats["failovers"] for s in sessions)
        + client.stats["failovers"],
    }


def assert_equivalent(packet, fluid, done_tolerance):
    assert packet["done"] is not None
    assert fluid["done"] is not None
    # Bytes are exact (well inside the 1% acceptance tolerance).
    assert fluid["bytes"] == packet["bytes"] == SIZE
    # Every discrete event matches exactly, per endpoint, in order.
    assert fluid["events"]["client"] == packet["events"]["client"]
    assert fluid["events"]["server"] == packet["events"]["server"]
    # The fluid run actually fast-forwarded.
    assert fluid["leaps"] > 0
    assert packet["leaps"] == 0
    drift = abs(fluid["done"] - packet["done"]) / packet["done"]
    assert drift <= done_tolerance, (
        "completion drift %.3f%% exceeds %.1f%% (packet %.3fs, fluid %.3fs)"
        % (drift * 100, done_tolerance * 100, packet["done"],
           fluid["done"]))


def test_plain_download_equivalence():
    """fig7 shape: one path, no faults."""
    packet = run_download("packet")
    fluid = run_download("fluid")
    assert_equivalent(packet, fluid, done_tolerance=0.02)
    # (The teardown after ``done`` abandons the idle primary on both
    # sides identically; the download itself never fails over.)
    assert fluid["failovers"] == packet["failovers"]
    # The bulk of the transfer was leapt, not simulated.
    assert fluid["leapt_time"] > 0.5 * fluid["done"]


def test_blackhole_failover_equivalence():
    """fig8 shape: the active path blackholes mid-transfer; the UTO
    fires and the session fails over to the second path."""
    def fault(topo):
        topo.flap_path(0, at=0.3)

    packet = run_download("packet", fault=fault)
    fluid = run_download("fluid", fault=fault)
    assert_equivalent(packet, fluid, done_tolerance=0.10)
    assert packet["failovers"] > 0
    assert fluid["failovers"] == packet["failovers"]


def test_rotating_outage_equivalence():
    """fig9 shape (mild rotation): exactly one working path, rotating;
    every rotation forces a failover in both modes."""
    def fault(topo):
        topo.rotate_working(2.0, start=2.0)

    kwargs = dict(fault=fault, uto=None, auto_uto=0.25,
                  client_kwargs={"join_timeout": 0.5})
    packet = run_download("packet", **kwargs)
    fluid = run_download("fluid", **kwargs)
    assert_equivalent(packet, fluid, done_tolerance=0.10)
    assert packet["failovers"] > 0


def test_fluid_download_is_deterministic():
    runs = [run_download("fluid") for _ in range(2)]
    assert runs[0] == runs[1]
