"""Addresses and endpoints."""

import pytest

from repro.net.address import Endpoint, IPAddress, ip_header_size


def test_v4_and_v6_families():
    assert IPAddress("10.0.0.1").family == 4
    assert IPAddress("fd00::1").family == 6
    assert IPAddress("10.0.0.1").is_v4
    assert IPAddress("fd00::1").is_v6


def test_packed_roundtrip():
    for text in ("192.168.1.7", "fd01::2a"):
        address = IPAddress(text)
        assert IPAddress.from_packed(address.packed()) == address


def test_packed_rejects_bad_length():
    with pytest.raises(ValueError):
        IPAddress.from_packed(b"\x01\x02\x03")


def test_equality_with_string():
    assert IPAddress("10.0.0.1") == "10.0.0.1"
    assert IPAddress("fd00::1") == IPAddress("fd00:0::1")


def test_hashable_canonical():
    assert len({IPAddress("fd00::1"), IPAddress("fd00:0:0::1")}) == 1


def test_endpoint_formatting():
    assert str(Endpoint("10.0.0.1", 443)) == "10.0.0.1:443"
    assert str(Endpoint("fd00::1", 443)) == "[fd00::1]:443"


def test_endpoint_port_range():
    with pytest.raises(ValueError):
        Endpoint("10.0.0.1", 70000)
    with pytest.raises(ValueError):
        Endpoint("10.0.0.1", -1)


def test_endpoint_equality_and_hash():
    a = Endpoint("10.0.0.1", 80)
    b = Endpoint(IPAddress("10.0.0.1"), 80)
    assert a == b and hash(a) == hash(b)
    assert a != Endpoint("10.0.0.1", 81)


def test_ip_header_sizes():
    assert ip_header_size(4) == 20
    assert ip_header_size(6) == 40
