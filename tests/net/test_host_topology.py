"""Hosts, routing, and the multipath topology builder."""

from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint, IPAddress
from repro.net.packet import Packet
from repro.tcp.segment import Segment


def data_packet(src, dst, payload=b"x"):
    seg = Segment(src_port=1000, dst_port=2000, payload=payload)
    return Packet(src, dst, "tcp", seg)


def test_builder_creates_disjoint_dual_stack_paths():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=2)
    assert topo.path(0).family == 4
    assert topo.path(1).family == 6
    assert len(topo.client.interfaces) == 2
    assert len(topo.server.interfaces) == 2
    assert topo.path(0).client_addr != topo.path(1).client_addr


def test_source_address_routing_pins_path():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=2, families=[4, 4])
    p0, p1 = topo.path(0), topo.path(1)
    # Sending from path-1's source address must leave via path 1.
    packet = data_packet(p1.client_addr, p1.server_addr)
    assert topo.client.send(packet)
    sim.run()
    assert p1.c2s.stats.tx_packets == 1
    assert p0.c2s.stats.tx_packets == 0


def test_send_fails_without_route():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=1)
    # Unknown destination AND a source the host does not own: no
    # source-routing shortcut applies and no route exists.
    packet = data_packet(IPAddress("192.0.2.1"), IPAddress("203.0.113.9"))
    assert topo.client.send(packet) is False


def test_send_fails_when_interface_down():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=1)
    topo.client.interfaces[0].set_up(False)
    p = topo.path(0)
    assert topo.client.send(data_packet(p.client_addr, p.server_addr)) is False


def test_host_drops_foreign_packets():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=1)
    received = []

    class Stack:
        def receive(self, packet):
            received.append(packet)

    topo.server.register_stack("tcp", Stack())
    p = topo.path(0)
    topo.client.send(data_packet(p.client_addr, p.server_addr))
    # A packet for an address the server does not own:
    topo.client.send(
        data_packet(p.client_addr, p.server_addr).copy()
    )
    foreign = data_packet(p.client_addr, IPAddress("10.0.0.99"))
    topo.client.add_route(IPAddress("10.0.0.99"),
                          topo.client.interfaces[0])
    topo.client.send(foreign)
    sim.run()
    assert len(received) == 2  # foreign packet silently ignored


def test_per_path_rate_and_delay_overrides():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=2, rates=[10_000_000, 20_000_000],
                           delays=[0.01, 0.04])
    assert topo.path(0).c2s.rate_bps == 10_000_000
    assert topo.path(1).c2s.delay == 0.04


def test_blackhole_scripting():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=1)
    p = topo.path(0)
    delivered = []

    class Stack:
        def receive(self, packet):
            delivered.append(sim.now)

    topo.server.register_stack("tcp", Stack())
    p.blackhole(sim, start=1.0, end=2.0)
    for t in (0.5, 1.5, 2.5):
        sim.at(t, topo.client.send,
               data_packet(p.client_addr, p.server_addr))
    sim.run()
    assert len(delivered) == 2  # the t=1.5 packet vanished


def test_endpoint_pairs_helper():
    sim = Simulator()
    topo = build_multipath(sim, n_paths=3, families=[4, 6, 4])
    pairs = topo.client_endpoint_pairs()
    assert len(pairs) == 3
    assert pairs[1][0].family == 6
