"""Link model: serialization, propagation, queueing, loss."""

import pytest

from repro.net import Simulator
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.address import IPAddress


class FakePayload:
    def __init__(self, size):
        self.size = size

    def wire_size(self):
        return self.size


def make_packet(size=1480):
    return Packet(IPAddress("10.0.0.1"), IPAddress("10.0.0.2"), "tcp",
                  FakePayload(size - 20))


def test_propagation_delay_only():
    sim = Simulator()
    link = Link(sim, rate_bps=None, delay=0.05)
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    link.send(make_packet())
    sim.run()
    assert arrivals == [pytest.approx(0.05)]


def test_serialization_delay():
    sim = Simulator()
    link = Link(sim, rate_bps=8_000_000, delay=0.0)  # 1 MB/s
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    link.send(make_packet(1000))  # 1000 B at 1 MB/s = 1 ms
    sim.run()
    assert arrivals == [pytest.approx(0.001)]


def test_back_to_back_packets_queue():
    sim = Simulator()
    link = Link(sim, rate_bps=8_000_000, delay=0.0)
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    for _ in range(3):
        link.send(make_packet(1000))
    sim.run()
    assert arrivals == [pytest.approx(0.001 * k) for k in (1, 2, 3)]


def test_drop_tail_queue_overflow():
    sim = Simulator()
    link = Link(sim, rate_bps=8_000_000, delay=0.0, queue_bytes=2500)
    arrivals = []
    link.connect(lambda pkt: arrivals.append(sim.now))
    for _ in range(5):
        link.send(make_packet(1000))
    sim.run()
    # ~2.5 KB of queue: the tail packets are dropped.
    assert link.stats.dropped_packets >= 2
    assert len(arrivals) + link.stats.dropped_packets == 5


def test_random_loss_uses_sim_rng():
    sim = Simulator(seed=1)
    link = Link(sim, rate_bps=None, delay=0.0, loss_rate=0.5)
    delivered = []
    link.connect(lambda pkt: delivered.append(pkt))
    for _ in range(200):
        link.send(make_packet())
    sim.run()
    assert 40 < len(delivered) < 160
    assert link.stats.dropped_packets == 200 - len(delivered)


def test_mtu_enforced():
    sim = Simulator()
    link = Link(sim, mtu=1500)
    link.connect(lambda pkt: None)
    with pytest.raises(ValueError):
        link.send(make_packet(3000))


def test_link_down_blackholes():
    sim = Simulator()
    link = Link(sim, rate_bps=None, delay=0.0)
    delivered = []
    link.connect(lambda pkt: delivered.append(pkt))
    link.set_up(False)
    link.send(make_packet())
    sim.run()
    assert delivered == []
    assert link.stats.dropped_packets == 1


def test_stats_count_delivered_bytes():
    sim = Simulator()
    link = Link(sim, rate_bps=None, delay=0.0)
    link.connect(lambda pkt: None)
    packet = make_packet(500)
    link.send(packet)
    sim.run()
    assert link.stats.tx_packets == 1
    assert link.stats.tx_bytes == packet.wire_size()
