"""Fig. 12: exchanging an eBPF congestion controller mid-session.

Two TCPLS upload sessions share a 100 Mbps, 20 ms RTT bottleneck
(the paper's experiment uses 60 ms and sweeps 10-100 ms; our Vegas
dynamics scale with RTT, so the shorter RTT keeps the three phases
inside a tractable horizon).  Session 1 starts with Vegas and owns the
link; session 2 starts with CUBIC at t=8 s and starves the Vegas
session (loss-based vs delay-based).  At t=20 s the server ships CUBIC
*bytecode* to session 1, which verifies and attaches it -- the
bandwidth split becomes fair.
"""

from conftest import run_once

from common import PSK, GoodputProbe, banner, fmt_series
from repro.core import TcplsClient, TcplsServer
from repro.ebpf.programs import cubic_bytecode
from repro.net import Simulator
from repro.net.address import IPAddress
from repro.net.host import Host
from repro.net.link import duplex_link
from repro.net.topology import MultipathTopology, PathInfo
from repro.net.middlebox import Blackhole
from repro.tcp import TcpStack

RATE = 100_000_000
SECOND_FLOW_AT = 8.0
ATTACH_AT = 20.0
HORIZON = 45.0


def shared_bottleneck(sim, delay):
    """Client and server joined by ONE link both sessions share.

    The queue is one bandwidth-delay product: deep enough that the
    loss-based flow maintains a standing queue, the regime where the
    RTT inflation drives Vegas's window down while CUBIC keeps growing
    (the starvation the paper shows).
    """
    client = Host(sim, "client")
    server = Host(sim, "server")
    c_addr, s_addr = IPAddress("10.0.0.1"), IPAddress("10.0.0.2")
    queue = max(int(RATE / 8 * (2 * delay) * 0.5), 40 * 1500)
    c2s, s2c = duplex_link(sim, client, server, rate_bps=RATE,
                           delay=delay, queue_bytes=queue,
                           name="bottleneck")
    for link in (c2s, s2c):
        link.jitter = 0.0005  # break drop-tail phase lockout
    ci = client.add_interface("c0", c_addr, tx_link=c2s)
    si = server.add_interface("s0", s_addr, tx_link=s2c)
    client.add_route(s_addr, ci)
    server.add_route(c_addr, si)
    hole_a, hole_b = Blackhole(), Blackhole()
    c2s.add_middlebox(hole_a)
    s2c.add_middlebox(hole_b)
    path = PathInfo(0, 4, c_addr, s_addr, c2s, s2c, hole_a, hole_b)
    return MultipathTopology(sim, client, server, [path])


def run_fig12(delay=0.010):
    sim = Simulator(seed=12)
    topo = shared_bottleneck(sim, delay)
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    sessions = []
    probes = {}

    def on_session(sess):
        index = len(sessions)
        sessions.append(sess)
        probe = probes[index]
        sess.on_stream_data = (
            lambda stream: probe.account(len(stream.recv())))

    server.on_session = on_session
    from repro.net.address import Endpoint

    def start_flow(index, cc):
        probes[index] = GoodputProbe(sim)
        client = TcplsClient(sim, cstack, psk=PSK)

        def on_ready(_s):
            client.conns[0].tcp.cc = __import__(
                "repro.tcp.congestion", fromlist=["make_congestion_control"]
            ).make_congestion_control(cc, client.conns[0].tcp.mss)
            stream = client.create_stream(client.conns[0])
            stream.send(b"x" * (1 << 30))  # effectively unbounded

        client.on_ready = on_ready
        client.connect(topo.path(0).client_addr,
                       Endpoint(topo.path(0).server_addr, 443))
        return client

    flow_vegas = start_flow(0, "vegas")
    sim.at(SECOND_FLOW_AT, start_flow, 1, "cubic")

    def attach_cubic():
        # The SERVER sends the bytecode; the Vegas client attaches it.
        sessions[0].send_ebpf_program(sessions[0].conns[0],
                                      cubic_bytecode(), program_id=1)

    sim.at(ATTACH_AT, attach_cubic)
    attached = []
    flow_vegas.on_ebpf_attached = lambda c, p: attached.append(sim.now)
    sim.run(until=HORIZON)
    return probes[0].series(), probes[1].series(), attached


def mean(series, start, end):
    values = [v for t, v in series if start <= t < end]
    return sum(values) / len(values) if values else 0.0


def test_fig12_ebpf_cc_attachment(benchmark):
    vegas_series, cubic_series, attached = run_once(benchmark, run_fig12)
    print(banner("Fig. 12 -- eBPF congestion controller exchanged "
                 "mid-session (100 Mbps, 20 ms RTT)"))
    print("flow1 (vegas->ebpf-cubic): " + fmt_series(vegas_series, 8))
    print("flow2 (native cubic):      " + fmt_series(cubic_series, 8))
    assert attached, "bytecode never attached"
    print("bytecode attached at t=%.2fs" % attached[0])

    solo = mean(vegas_series, SECOND_FLOW_AT - 6, SECOND_FLOW_AT)
    vegas_starved = mean(vegas_series, ATTACH_AT - 6, ATTACH_AT)
    cubic_phase1 = mean(cubic_series, ATTACH_AT - 6, ATTACH_AT)
    vegas_after = mean(vegas_series, ATTACH_AT + 12, HORIZON)
    cubic_after = mean(cubic_series, ATTACH_AT + 12, HORIZON)
    print("solo=%.1f | starved: vegas=%.1f cubic=%.1f | "
          "after attach: flow1=%.1f flow2=%.1f" % (
              solo, vegas_starved, cubic_phase1, vegas_after, cubic_after))

    # Alone, Vegas climbs to most of the link (its post-loss ramp is
    # one MSS per RTT, the documented Vegas behaviour).
    assert solo > 0.75 * RATE / 1e6
    # CUBIC starves Vegas (paper: "quickly results in an unfair
    # distribution of the bandwidth").
    assert cubic_phase1 > 1.3 * vegas_starved
    before = max(vegas_starved, cubic_phase1) / max(
        min(vegas_starved, cubic_phase1), 0.1)
    assert before > 1.5
    # After the eBPF CUBIC attaches, both flows run the same algorithm
    # and the split converges toward fairness.
    after = max(vegas_after, cubic_after) / max(
        min(vegas_after, cubic_after), 0.1)
    assert after < before
    assert after < 1.8
    # And the link stays ~fully used.
    assert vegas_after + cubic_after > 0.75 * RATE / 1e6


def test_fig12_delay_sweep(benchmark):
    """Paper: 'same experiment using different delays, 10 ms to 100 ms,
    similar results'."""

    def sweep():
        results = {}
        for delay in (0.005, 0.025):  # RTT 10 ms and 50 ms
            vegas_series, cubic_series, attached = run_fig12(delay)
            vegas_after = mean(vegas_series, ATTACH_AT + 12, HORIZON)
            cubic_after = mean(cubic_series, ATTACH_AT + 12, HORIZON)
            results[delay] = (vegas_after, cubic_after, bool(attached))
        return results

    results = run_once(benchmark, sweep)
    print(banner("Fig. 12 sweep -- fairness after attach vs RTT"))
    for delay, (vegas_after, cubic_after, attached) in results.items():
        ratio = vegas_after / cubic_after if cubic_after else 0
        print("RTT %3.0fms: flow1=%.1f flow2=%.1f ratio=%.2f" % (
            delay * 2000, vegas_after, cubic_after, ratio))
        assert attached
        assert 0.35 < ratio < 2.9
