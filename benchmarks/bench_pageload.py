#!/usr/bin/env python
"""Page-load benchmark: scheduling policies x stacks x loss grids.

Replays deterministic synthetic web pages (dependency graphs of sized
objects, see :mod:`repro.workload`) over TCPLS multipath, QUIC and
MPTCP, under each scheduling policy, across Gilbert-Elliott loss
grids, and reports the page-load-time (PLT) distribution of every
cell.  This is the experiment the policy layer exists for: the same
:class:`~repro.core.engine.policy.Policy` object that schedules
records inside a coupled group decides which pooled connection carries
each page object, so the matrix directly compares policy quality at
page granularity.

All metrics derive from simulator time and deterministic counters: a
fixed configuration produces a byte-identical JSON envelope on every
run and for any ``--jobs`` value (cells run via
:func:`repro.perf.sweep.run_sweep`, one fresh interpreter each).

Usage::

    PYTHONPATH=src python benchmarks/bench_pageload.py --json benchmarks/BENCH_9.json
    PYTHONPATH=src python benchmarks/bench_pageload.py --jobs 4 --pages 8
    PYTHONPATH=src python benchmarks/bench_pageload.py --stacks tcpls,quic --grids clean,ge-light
"""

import argparse
import json
import sys
import time

import pytest

from repro.perf.pageload import (
    PAGELOAD_GRIDS,
    PAGELOAD_POLICIES,
    PAGELOAD_STACKS,
    run_pageload_cell,
)
from repro.perf.sweep import SweepPoint, run_sweep

DEFAULT_STACKS = ("tcpls", "quic", "mptcp")
DEFAULT_POLICIES = ("round-robin", "lowest-rtt", "predictive")
DEFAULT_GRIDS = ("clean", "ge-light", "ge-burst")


def _csv(value, allowed, label):
    names = [v.strip() for v in value.split(",") if v.strip()]
    for name in names:
        if name not in allowed:
            raise SystemExit("unknown %s %r (choose from %s)"
                             % (label, name, ", ".join(allowed)))
    return names


def build_points(args):
    """The cell matrix in canonical (merge) order."""
    points = []
    for grid in args.grids:
        for stack in args.stacks:
            for policy in args.policies:
                points.append(SweepPoint(
                    "pageload/%s/%s/%s" % (grid, stack, policy),
                    run_pageload_cell,
                    {
                        "stack": stack, "policy": policy, "grid": grid,
                        "pages": args.pages, "waves": args.waves,
                        "n_objects": args.objects, "seed": args.seed,
                        "horizon": args.horizon,
                    }))
    return points


# -- pytest-benchmark smoke cells ------------------------------------------
#
# One scaled-down cell per (stack, policy) pair on the ge-light grid.
# The timing lands in the usual compare.py regression table; the cell's
# simulated PLT percentiles ride along in extra_info, so the table also
# reports p50/p95 page-load time per point (deterministic sim-time
# metrics, unlike the wall-clock timing).

SMOKE_CELLS = [
    ("tcpls", "round-robin"), ("tcpls", "lowest-rtt"),
    ("tcpls", "predictive"), ("quic", "round-robin"),
    ("quic", "predictive"), ("mptcp", "round-robin"),
]


@pytest.mark.workload
@pytest.mark.smoke
@pytest.mark.parametrize("stack,policy", SMOKE_CELLS,
                         ids=["%s-%s" % cell for cell in SMOKE_CELLS])
def test_pageload_smoke(benchmark, stack, policy):
    from conftest import run_once

    metrics = run_once(benchmark, lambda: run_pageload_cell(
        stack=stack, policy=policy, grid="ge-light",
        pages=3, waves=2, n_objects=12, horizon=60.0))
    assert metrics["pages_completed"] == metrics["pages"], \
        "pages stalled: %r" % (metrics,)
    benchmark.extra_info["plt_p50"] = metrics["plt_p50"]
    benchmark.extra_info["plt_p95"] = metrics["plt_p95"]
    benchmark.extra_info["pool"] = metrics["pool"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stacks", default=",".join(DEFAULT_STACKS),
                        help="comma-separated stacks (default %(default)s)")
    parser.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                        help="comma-separated policies (default %(default)s)")
    parser.add_argument("--grids", default=",".join(DEFAULT_GRIDS),
                        help="comma-separated loss grids "
                             "(default %(default)s)")
    parser.add_argument("--pages", type=int, default=6,
                        help="pages per cell (default 6)")
    parser.add_argument("--waves", type=int, default=3,
                        help="connect waves per cell (default 3)")
    parser.add_argument("--objects", type=int, default=30,
                        help="objects per page (default 30)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--horizon", type=float, default=120.0,
                        help="per-cell simulation horizon in seconds")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes")
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic envelope here")
    args = parser.parse_args(argv)
    args.stacks = _csv(args.stacks, PAGELOAD_STACKS, "stack")
    args.policies = _csv(args.policies, PAGELOAD_POLICIES, "policy")
    args.grids = _csv(args.grids, PAGELOAD_GRIDS, "grid")

    points = build_points(args)
    started = time.monotonic()
    cells = []
    for result in run_sweep(points, jobs=args.jobs):
        if "error" in result:
            print("pageload: %s failed: %s"
                  % (result["name"], result["error"]), file=sys.stderr)
            return 1
        cells.append(result["metrics"])
    wall = time.monotonic() - started

    incomplete = sum(c["pages"] - c["pages_completed"] for c in cells)
    summary = {
        "cells": len(cells),
        "pages": sum(c["pages"] for c in cells),
        "pages_completed": sum(c["pages_completed"] for c in cells),
        "plt_p50": {
            "%s/%s/%s" % (c["grid"], c["stack"], c["policy"]): c["plt_p50"]
            for c in cells
        },
        "plt_p95": {
            "%s/%s/%s" % (c["grid"], c["stack"], c["policy"]): c["plt_p95"]
            for c in cells
        },
    }
    envelope = {
        "bench": "pageload",
        "config": {
            "stacks": args.stacks, "policies": args.policies,
            "grids": args.grids, "pages": args.pages,
            "waves": args.waves, "objects": args.objects,
            "seed": args.seed,
        },
        "results": cells,
        "summary": summary,
    }
    text = json.dumps(envelope, sort_keys=True, indent=2) + "\n"
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    # Human-readable grid on stderr: one row per cell.
    header = "%-10s %-7s %-12s %8s %8s %6s" % (
        "grid", "stack", "policy", "p50(s)", "p95(s)", "pages")
    print(header, file=sys.stderr)
    print("-" * len(header), file=sys.stderr)
    for c in cells:
        print("%-10s %-7s %-12s %8s %8s %3d/%-3d" % (
            c["grid"], c["stack"], c["policy"],
            "%.3f" % c["plt_p50"] if c["plt_p50"] is not None else "-",
            "%.3f" % c["plt_p95"] if c["plt_p95"] is not None else "-",
            c["pages_completed"], c["pages"]), file=sys.stderr)
    print("pageload: %d cells, %d/%d pages, wall %.1fs"
          % (len(cells), summary["pages_completed"], summary["pages"],
             wall), file=sys.stderr)
    if incomplete:
        print("pageload: WARNING: %d pages never completed" % incomplete,
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
