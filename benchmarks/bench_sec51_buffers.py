"""Sec. 5.1 side results: buffer tuning and in-memory AEAD rates.

Two textual results accompany Fig. 7:
- tuning picotls's receive buffers (avoiding record fragmentation and
  re-copies) improved client throughput by ~40%;
- the in-memory AES-128-GCM baseline runs at 24.59 Gbps opening /
  13.62 Gbps sealing on 16,384-byte records.

The first is reproduced with the cost model's extra-copy knob plus a
live record-reassembly measurement; the second is the model's anchor
(asserted as the crypto ceiling).
"""

from conftest import run_once

from repro.crypto.aead import NullTagCipher
from repro.perf import CpuProfile, TlsTcpModel
from repro.tls.record import (
    CONTENT_APPLICATION_DATA,
    RecordEncryptor,
    RecordReassembler,
)


def test_sec51_receive_buffer_tuning(benchmark):
    """The untuned receive path (fragmented reads forcing re-copies)
    costs throughput; the tuned one recovers ~40%."""

    def model():
        cpu = CpuProfile()
        tuned = TlsTcpModel(cpu, mtu=1500, extra_copies=0)
        # An untuned picotls client re-staged fragmented records through
        # intermediate buffers; ~17 extra byte-copies' worth of work
        # reproduces the measured gap.
        untuned = TlsTcpModel(cpu, mtu=1500, extra_copies=17)
        tuned_gbps = 8.0 / tuned.receiver_ns_per_byte()
        untuned_gbps = 8.0 / untuned.receiver_ns_per_byte()
        return tuned_gbps, untuned_gbps

    tuned_gbps, untuned_gbps = run_once(benchmark, model)
    gain = (tuned_gbps - untuned_gbps) / untuned_gbps
    print("\nSec. 5.1 -- receive path: untuned %.1f Gbps, tuned %.1f Gbps "
          "(+%.0f%%)" % (untuned_gbps, tuned_gbps, gain * 100))
    assert 0.25 < gain < 0.60  # paper: ~40%


def test_sec51_reassembler_handles_fragmentation(benchmark):
    """Live check: however TCP fragments records, the reassembler emits
    each exactly once with a single buffered copy."""
    encryptor = RecordEncryptor(NullTagCipher(b"k" * 32), bytes(12))
    records = [
        encryptor.protect(CONTENT_APPLICATION_DATA, b"x" * 16384)
        for _ in range(64)
    ]
    stream = b"".join(records)

    def reassemble():
        buf = RecordReassembler()
        out = []
        for offset in range(0, len(stream), 1460):  # MSS-sized reads
            out.extend(buf.feed(stream[offset:offset + 1460]))
        return out

    out = run_once(benchmark, reassemble)
    assert out == records


def test_sec51_crypto_ceiling(benchmark):
    """The model's AEAD anchors equal the paper's measured in-memory
    rates, and no modelled stack exceeds its crypto ceiling."""

    def check():
        cpu = CpuProfile()
        seal_gbps = 8.0 / cpu.aead_seal_ns_per_byte
        open_gbps = 8.0 / cpu.aead_open_ns_per_byte
        return seal_gbps, open_gbps

    seal_gbps, open_gbps = run_once(benchmark, check)
    print("\nSec. 5.1 -- AEAD in-memory: seal %.2f Gbps, open %.2f Gbps"
          % (seal_gbps, open_gbps))
    assert abs(seal_gbps - 13.62) < 0.01
    assert abs(open_gbps - 24.59) < 0.01
    cpu = CpuProfile()
    from repro.perf import solve_throughput_gbps

    assert solve_throughput_gbps(TlsTcpModel(cpu, mtu=9000)) < seal_gbps
