"""Benchmark harness plumbing.

Every bench in this directory regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Each test wraps its
experiment in the pytest-benchmark fixture (rounds=1 -- the experiments
are deterministic discrete-event runs, not micro timings) so
``pytest benchmarks/ --benchmark-only`` executes the whole evaluation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--qlog", metavar="DIR", default=None,
        help="write one qlog trace per instrumented experiment run into "
             "DIR (equivalent to REPRO_QLOG=DIR); inspect with QVIS",
    )


def pytest_configure(config):
    qlog_dir = config.getoption("--qlog", default=None)
    if qlog_dir:
        import common

        common.QLOG_DIR = qlog_dir


def pytest_sessionfinish(session, exitstatus):
    import common

    for path in common.dump_traces():
        print("[qlog] wrote %s" % path)


def run_once(benchmark, fn):
    """Execute an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
