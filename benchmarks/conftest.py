"""Benchmark harness plumbing.

Every bench in this directory regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Each test wraps its
experiment in the pytest-benchmark fixture (rounds=1 -- the experiments
are deterministic discrete-event runs, not micro timings) so
``pytest benchmarks/ --benchmark-only`` executes the whole evaluation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def run_once(benchmark, fn):
    """Execute an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
