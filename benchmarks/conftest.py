"""Benchmark harness plumbing.

Every bench in this directory regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index).  Each test wraps its
experiment in the pytest-benchmark fixture (rounds=1 -- the experiments
are deterministic discrete-event runs, not micro timings) so
``pytest benchmarks/ --benchmark-only`` executes the whole evaluation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--qlog", metavar="DIR", default=None,
        help="write one qlog trace per instrumented experiment run into "
             "DIR (equivalent to REPRO_QLOG=DIR); inspect with QVIS",
    )
    parser.addoption(
        "--json", metavar="PATH", default=None, dest="bench_json",
        help="write the run's benchmark timings to PATH as JSON "
             "(consumed by benchmarks/compare.py for regression checks)",
    )


def pytest_configure(config):
    qlog_dir = config.getoption("--qlog", default=None)
    if qlog_dir:
        import common

        common.QLOG_DIR = qlog_dir


def _bench_stat(bench, key):
    """Pull one statistic off a pytest-benchmark entry, tolerating the
    small layout differences between plugin versions."""
    stats = getattr(bench, "stats", None)
    inner = getattr(stats, "stats", stats)
    value = getattr(inner, key, None)
    return float(value) if value is not None else None


def pytest_sessionfinish(session, exitstatus):
    import common

    for path in common.dump_traces():
        print("[qlog] wrote %s" % path)

    json_path = session.config.getoption("bench_json", default=None)
    if not json_path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    entries = []
    for bench in benchmarks:
        entry = {
            "name": getattr(bench, "name", "?"),
            "fullname": getattr(bench, "fullname", "?"),
            "mean": _bench_stat(bench, "mean"),
            "min": _bench_stat(bench, "min"),
            "stddev": _bench_stat(bench, "stddev"),
            "rounds": getattr(getattr(bench, "stats", None), "rounds",
                              None),
        }
        # Simulated-time metrics (e.g. the page-load percentiles the
        # workload cells record) ride along for compare.py's PLT table.
        extra = getattr(bench, "extra_info", None)
        if extra:
            entry["extra_info"] = dict(extra)
        entries.append(entry)
    import json

    with open(json_path, "w") as handle:
        json.dump({"benchmarks": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("[bench] wrote %d benchmark timings to %s"
          % (len(entries), json_path))


def run_once(benchmark, fn):
    """Execute an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
