"""Fig. 8: recovery delay after a single outage, TCPLS vs MPTCP.

Two disjoint paths (25 Mbps / 10 ms), backup-style second path.  At
t = 3 s the active path either blackholes or receives a spurious RST.
The figure is the goodput-over-time series; the numbers that matter are
the recovery gaps.

Outages are driven through the deterministic fault layer
(:mod:`repro.net.scenario` via :class:`FaultyTopology`), so two runs
with the same seed replay the identical failure and produce identical
metrics — ``tests/net/test_bench_scenarios.py`` asserts that.
"""

from conftest import run_once

from common import (
    banner,
    build_mptcp_upload,
    build_tcpls_download,
    fmt_series,
    maybe_trace,
    scaled,
)
from repro.net import Simulator, build_faulty_multipath

SIZE = scaled(40 << 20)
OUTAGE_AT = 3.0


def recovery_gap(series, outage_at=OUTAGE_AT, threshold=5.0):
    """Seconds from the outage until goodput is back above threshold."""
    stall = None
    for t, v in series:
        if t >= outage_at - 0.3 and v < threshold:
            stall = t
            break
    if stall is None:
        return 0.0
    for t, v in series:
        if t > stall and v >= threshold:
            return t - outage_at
    return float("inf")


def run_tcpls(outage, outage_at=None):
    outage_at = OUTAGE_AT if outage_at is None else outage_at
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    maybe_trace(sim, "fig8_tcpls_%s" % outage)
    client, sessions, probe, done = build_tcpls_download(sim, topo, SIZE)
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="s2c")
    sim.run(until=60)
    assert done, "TCPLS transfer did not finish"
    return probe.series(), done[0]


def run_mptcp(outage, outage_at=None):
    outage_at = OUTAGE_AT if outage_at is None else outage_at
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    client, probe, done = build_mptcp_upload(sim, topo, SIZE,
                                             path_manager="backup")
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="c2s")
    sim.run(until=60)
    assert done, "MPTCP transfer did not finish"
    return probe.series(), done[0]


def run_all():
    results = {}
    for outage in ("rst", "blackhole"):
        results[("tcpls", outage)] = run_tcpls(outage)
        results[("mptcp", outage)] = run_mptcp(outage)
    return results


def test_fig8_single_outage_recovery(benchmark):
    results = run_once(benchmark, run_all)
    print(banner("Fig. 8 -- recovery after a single outage at t=3s"))
    gaps = {}
    for (proto, outage), (series, finished) in results.items():
        gap = recovery_gap(series)
        gaps[(proto, outage)] = gap
        print("%-6s %-10s recovery=%.2fs finished=%.1fs" % (
            proto, outage, gap, finished))
        print("   " + fmt_series(series, every=2))

    # Paper: on RST both react fast.
    assert gaps[("tcpls", "rst")] < 0.6
    assert gaps[("mptcp", "rst")] < 1.5
    # Paper: a blackhole is harder; TCPLS (UTO 250 ms) recovers in ~1 s.
    assert 0.25 <= gaps[("tcpls", "blackhole")] <= 1.5
    # MPTCP relies on RTO backoff: slower than TCPLS on the blackhole.
    assert gaps[("mptcp", "blackhole")] > gaps[("tcpls", "blackhole")]
    # Both transfers complete despite the outage.
