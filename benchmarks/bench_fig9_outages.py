"""Fig. 9: repeated outages on a 4-path network, 60 MB download.

Three of the four paths are blackholed at any time; the working path
rotates every 5 seconds so each stack must *find* it before recovering.
The paper's result: MPTCP handles the first failure well but needs
several seconds for the following ones; TCPLS finds the right path
quickly every time and finishes the transfer sooner.

The rotation is scripted with ``FaultyTopology.rotate_working`` — the
deterministic fault layer — so identical seeds replay the identical
outage pattern (asserted by ``tests/net/test_bench_scenarios.py``).
"""

from conftest import run_once

from common import (
    banner,
    build_mptcp_upload,
    build_tcpls_download,
    fmt_series,
    maybe_trace,
    scaled,
)
from repro.net import Simulator, build_faulty_multipath

SIZE = scaled(60 << 20)
ROTATE_EVERY = 5.0
N_PATHS = 4
HORIZON = 120.0


def run_tcpls(rotate_every=None):
    rotate_every = ROTATE_EVERY if rotate_every is None else rotate_every
    sim = Simulator(seed=9)
    topo = build_faulty_multipath(sim, n_paths=N_PATHS,
                                  families=[4, 6, 4, 6])
    maybe_trace(sim, "fig9_tcpls")
    client, sessions, probe, done = build_tcpls_download(
        sim, topo, SIZE, uto=None,
        client_kwargs={"join_timeout": 0.5},
    )
    client.auto_user_timeout = 0.25
    topo.rotate_working(rotate_every)
    sim.run(until=HORIZON)
    return probe.series(), (done[0] if done else None), probe.total


def run_mptcp(rotate_every=None):
    rotate_every = ROTATE_EVERY if rotate_every is None else rotate_every
    sim = Simulator(seed=9)
    topo = build_faulty_multipath(sim, n_paths=N_PATHS,
                                  families=[4, 6, 4, 6])
    client, probe, done = build_mptcp_upload(sim, topo, SIZE,
                                             path_manager="fullmesh",
                                             n_paths=N_PATHS)
    topo.rotate_working(rotate_every)
    sim.run(until=HORIZON)
    return probe.series(), (done[0] if done else None), probe.total


def run_all():
    return {"tcpls": run_tcpls(), "mptcp": run_mptcp()}


def stalled_time(series, threshold=1.0):
    return sum(0.25 for _t, v in series if v < threshold)


def test_fig9_rotating_outages(benchmark):
    results = run_once(benchmark, run_all)
    print(banner("Fig. 9 -- rotating outages (working path moves every "
                 "%.0fs), %d MB download" % (ROTATE_EVERY, SIZE >> 20)))
    summary = {}
    for proto, (series, finished, total) in results.items():
        stall = stalled_time(series)
        summary[proto] = (finished, stall, total)
        print("%-6s finished=%s stalled=%.1fs delivered=%dMB" % (
            proto, ("%.1fs" % finished) if finished else "DNF",
            stall, total >> 20))
        print("   " + fmt_series(series, every=8))

    tcpls_done, tcpls_stall, tcpls_total = summary["tcpls"]
    mptcp_done, mptcp_stall, mptcp_total = summary["mptcp"]
    # TCPLS completes the transfer.
    assert tcpls_done is not None
    # TCPLS completes faster than MPTCP (or MPTCP does not finish).
    if mptcp_done is not None:
        assert tcpls_done < mptcp_done
    else:
        assert tcpls_total > mptcp_total
    # TCPLS spends clearly less time stalled across the rotations.
    assert tcpls_stall < mptcp_stall
