"""Ablations of TCPLS design choices called out in DESIGN.md.

- end-of-record control framing vs a header-first layout (the zero-copy
  argument of Sec. 3.1);
- tag-trial demultiplexing cost under adversarial stream interleaving
  (footnote 2's worst case);
- the failover ACK-interval trade-off (the paper's stated future work),
  measured live rather than only in the cost model;
- record schedulers on asymmetric paths (the paper ships round-robin
  and leaves others to the application).
"""

from conftest import run_once

from common import PSK, banner, build_tcpls_group_upload, scaled
from repro.core import TcplsClient, TcplsServer
from repro.core.scheduler import LowestRttScheduler, RoundRobinScheduler
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack


# ---------------------------------------------------------------------------
# Framing ablation
# ---------------------------------------------------------------------------

def test_ablation_end_of_record_framing(benchmark):
    """End-of-record control lets a receiver keep the payload as the
    buffer prefix (truncate); header-first framing forces a payload
    move.  Measure both receive paths over 2,000 records."""
    from repro.core.record import decode_inner, encode_inner
    from repro.core.record import RECORD_TYPE_STREAM_DATA

    payload = b"\x99" * 16384
    control = b"\x01" + b"\x00" * 8
    tail_framed = encode_inner(RECORD_TYPE_STREAM_DATA, payload, control)
    head_framed = bytes([RECORD_TYPE_STREAM_DATA, len(control)]) + \
        control + payload

    def receive_tail_framing():
        total = 0
        for _ in range(2000):
            # Payload is the buffer prefix: a memoryview, zero bytes moved.
            record = decode_inner(tail_framed, zero_copy=True)
            total += len(record.payload)
        return total

    def receive_head_framing():
        from repro.core.record import TcplsRecord

        total = 0
        for _ in range(2000):
            record_type = head_framed[0]
            control_len = head_framed[1]
            control = bytes(head_framed[2:2 + control_len])
            # Payload sits *after* the header: delivering a contiguous
            # buffer requires copying it to the front (the memmove the
            # end-of-record layout avoids).
            moved = bytes(head_framed[2 + control_len:])
            record = TcplsRecord(record_type, moved, control)
            total += len(record.payload)
        return total

    import time

    start = time.perf_counter()
    receive_head_framing()
    head_cost = time.perf_counter() - start
    total = run_once(benchmark, receive_tail_framing)
    assert total == 2000 * 16384
    start = time.perf_counter()
    receive_tail_framing()
    tail_cost = time.perf_counter() - start
    print("\nframing ablation: end-of-record (zero-copy) %.2f ms vs "
          "header-first (memmove) %.2f ms per 2000 x 16 KiB records"
          % (tail_cost * 1e3, head_cost * 1e3))
    # End-of-record framing delivers without moving the payload.
    assert tail_cost < head_cost


# ---------------------------------------------------------------------------
# Demux interleaving (footnote 2)
# ---------------------------------------------------------------------------

def run_interleaving(n_streams, interleave):
    sim = Simulator(seed=21)
    topo = build_multipath(sim, n_paths=1, families=[4])
    cstack, sstack = TcpStack(sim, topo.client), TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    sessions = []
    server.on_session = lambda s: (
        sessions.append(s), setattr(s, "on_stream_data", lambda st: st.recv())
    )
    client = TcplsClient(sim, cstack, psk=PSK)
    p = topo.path(0)
    client.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=0.2)
    streams = [client.create_stream(client.conns[0])
               for _ in range(n_streams)]
    chunk = 4000
    rounds = 60
    if interleave:
        for _ in range(rounds):
            for stream in streams:
                stream.send(b"i" * chunk)
    else:
        for stream in streams:
            stream.send(b"s" * (chunk * rounds))
    sim.run(until=20)
    stats = sessions[0].stats
    return stats["tag_trials"] / max(stats["records_received"], 1)


def test_ablation_demux_interleaving(benchmark):
    """Sequential stream scheduling costs ~1 trial/record; adversarial
    per-record interleaving of N streams costs extra trials -- the cost
    footnote 2 proposes explicit signalling to remove."""

    def run():
        return {
            ("sequential", 4): run_interleaving(4, interleave=False),
            ("interleaved", 4): run_interleaving(4, interleave=True),
            ("interleaved", 8): run_interleaving(8, interleave=True),
        }

    results = run_once(benchmark, run)
    print(banner("demux ablation -- tag trials per record"))
    for (mode, n), trials in results.items():
        print("%-12s %d streams: %.2f trials/record" % (mode, n, trials))
    assert results[("sequential", 4)] < 1.5
    assert results[("interleaved", 4)] > results[("sequential", 4)]
    # More interleaved streams, more trials (bounded well below window).
    assert results[("interleaved", 8)] >= results[("interleaved", 4)] * 0.8


# ---------------------------------------------------------------------------
# ACK interval (live)
# ---------------------------------------------------------------------------

def run_ack_interval(interval):
    sim = Simulator(seed=22)
    topo = build_multipath(sim, n_paths=1, families=[4])
    cstack, sstack = TcpStack(sim, topo.client), TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK, ack_interval=interval)
    sessions = []
    done = []
    size = scaled(8 << 20)

    def on_session(sess):
        sessions.append(sess)
        sess.enable_failover()
        state = {"got": 0}

        def on_stream_data(stream):
            state["got"] += len(stream.recv())
            if state["got"] >= size and not done:
                done.append(sim.now)
        sess.on_stream_data = on_stream_data

    server.on_session = on_session
    client = TcplsClient(sim, cstack, psk=PSK, ack_interval=interval)
    p = topo.path(0)

    def on_ready(_s):
        stream = client.create_stream(client.conns[0])
        stream.send(b"a" * size)
        stream.close()

    client.on_ready = on_ready
    client.connect(p.client_addr, Endpoint(p.server_addr, 443))
    sim.run(until=60)
    assert done
    return done[0], sessions[0].stats["acks_sent"]


def test_ablation_failover_ack_interval(benchmark):
    """The paper defaults to one record ACK per 16 records and leaves
    the optimal frequency as future work; sweep it live."""

    def sweep():
        return {interval: run_ack_interval(interval)
                for interval in (2, 16, 64)}

    results = run_once(benchmark, sweep)
    print(banner("failover ACK-interval ablation (8 MiB transfer)"))
    for interval, (finish, acks) in results.items():
        print("every %2d records: %4d ACK records, done %.2fs"
              % (interval, acks, finish))
    # ACK volume scales inversely with the interval...
    assert results[2][1] > results[16][1] > results[64][1]
    # ...while completion time barely moves on an uncongested path.
    times = [finish for finish, _acks in results.values()]
    assert max(times) - min(times) < 0.5


# ---------------------------------------------------------------------------
# Schedulers on asymmetric paths
# ---------------------------------------------------------------------------

def run_scheduler(scheduler_factory):
    sim = Simulator(seed=23)
    topo = build_multipath(sim, n_paths=2,
                           rates=[25_000_000, 25_000_000],
                           delays=[0.005, 0.050])  # 10 ms vs 100 ms RTT
    client, sessions, probe, done = build_tcpls_group_upload(
        sim, topo, scaled(8 << 20), n_paths=2)
    # Replace the scheduler on the (single) group once it exists.
    original_pump = client._pump_group

    def pump(group):
        if scheduler_factory is not None and not hasattr(group, "_swapped"):
            group.scheduler = scheduler_factory()
            group._swapped = True
        return original_pump(group)

    client._pump_group = pump
    sim.run(until=60)
    return done[0] if done else None


def test_ablation_schedulers(benchmark):
    """Round-robin vs lowest-RTT over one fast and one slow path: the
    RTT-aware policy finishes no later, usually earlier."""

    def sweep():
        return {
            "round-robin": run_scheduler(RoundRobinScheduler),
            "lowest-rtt": run_scheduler(LowestRttScheduler),
        }

    results = run_once(benchmark, sweep)
    print(banner("scheduler ablation (10 ms vs 100 ms RTT paths)"))
    for name, finish in results.items():
        print("%-12s done %.2fs" % (name, finish))
    assert results["round-robin"] is not None
    assert results["lowest-rtt"] is not None
    assert results["lowest-rtt"] <= results["round-robin"] * 1.1
