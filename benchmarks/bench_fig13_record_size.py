"""Fig. 13 (Appendix A): aggregation with 1,500-byte records.

Same experiment as Fig. 11 but with small TCPLS records: the goodput
irregularities shrink (the reordering chunk is ~10x smaller) at a
higher CPU cost per byte, which the cost model quantifies.
"""

from conftest import run_once

from common import banner, build_tcpls_group_upload, fmt_series, scaled
from repro.net import Simulator, build_multipath
from repro.perf import CpuProfile, TcplsModel, TcplsVariant

SIZE = scaled(60 << 20)
SECOND_PATH_AT = 5.0


def run_tcpls(record_payload):
    sim = Simulator(seed=13)
    topo = build_multipath(sim, n_paths=2)
    client, sessions, probe, done = build_tcpls_group_upload(
        sim, topo, SIZE, record_payload=record_payload, n_paths=1)

    def enable_second_path():
        client.join(topo.path(1).client_addr)

        def attach(conn):
            group = list(client.groups.values())[0]
            client.add_group_stream(group, conn)
        client.on_join = attach

    sim.at(SECOND_PATH_AT, enable_second_path)
    sim.run(until=120)
    return probe, done


def run_both():
    return {
        16384: run_tcpls(16384),
        1500: run_tcpls(1500),
    }


def test_fig13_small_records_smoother_goodput(benchmark):
    results = run_once(benchmark, run_both)
    print(banner("Fig. 13 -- aggregation goodput vs record size"))
    stats = {}
    for record_size, (probe, done) in results.items():
        end = done[0] - 0.25 if done else SECOND_PATH_AT + 15.0
        start = min(SECOND_PATH_AT + 3.0, end - 1.5)
        mean = probe.mean_between(start, end)
        std = probe.stddev_between(start, end)
        stats[record_size] = (mean, std, done)
        print("records=%5dB aggregated=%5.1f Mbps stddev=%4.2f "
              "finished=%s" % (record_size, mean, std,
                               "%.1fs" % done[0] if done else "DNF"))
        print("   " + fmt_series(probe.series(), every=8))

    mean_big, std_big, done_big = stats[16384]
    mean_small, std_small, done_small = stats[1500]
    assert done_big and done_small
    # Both sizes aggregate the two paths.
    assert mean_big > 40 and mean_small > 35
    # Appendix A: smaller records -> steadier goodput.
    assert std_small < std_big

    # "...at a slightly higher CPU cost since encryption and decryption
    # are performed more often" -- from the cost model.
    cpu = CpuProfile()
    cost_big = TcplsModel(cpu, record_size=16384,
                          variant=TcplsVariant.MULTIPATH)
    cost_small = TcplsModel(cpu, record_size=1500,
                            variant=TcplsVariant.MULTIPATH)
    per_byte_big = cost_big.sender_ns_per_byte()
    per_byte_small = cost_small.sender_ns_per_byte()
    print("modelled CPU cost: %.3f ns/B (16384) vs %.3f ns/B (1500)"
          % (per_byte_big, per_byte_small))
    assert per_byte_small > per_byte_big
