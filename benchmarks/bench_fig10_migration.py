"""Fig. 10: application-triggered connection migration.

60 MiB download; 30 Mbps paths; 40 ms RTT on IPv4, 80 ms on IPv6.  The
application migrates the transfer v4 -> v6 and later back, each time
through a coupled-streams window in which both paths carry records --
the goodput *peaks* above a single path's rate during the windows and
never collapses.
"""

from conftest import run_once

from common import PSK, GoodputProbe, banner, fmt_series, scaled
from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

SIZE = scaled(60 << 20)
RATE = 30_000_000
MIGRATION_WINDOW = 1.0


def run_migration():
    sim = Simulator(seed=10)
    topo = build_multipath(sim, n_paths=2, rates=[RATE, RATE],
                           delays=[0.020, 0.040])  # RTT 40 / 80 ms
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    client = TcplsClient(sim, cstack, psk=PSK)
    probe = GoodputProbe(sim)
    sessions = []
    done = []
    migrations = []

    def on_session(sess):
        sessions.append(sess)

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                group = sess.create_coupled_group([sess.conns[0]])
                sess.fig10_group = group
                group.send(b"V" * SIZE)
                group.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_group_data(group):
        probe.account(len(group.recv()))
        if group.complete and not done:
            done.append(sim.now)
            probe.stop()

    client.on_group_data = on_group_data

    def on_ready(_s):
        request = client.create_stream(client.conns[0])
        request.send(b"GET /file")
        client.join(topo.path(1).client_addr)

    client.on_ready = on_ready

    def migrate(to_index):
        """Move the server's sending group to conns[to_index] through a
        coupled window (paper: 'uses coupled streams to transition
        smoothly')."""
        if done:
            return
        sess = sessions[0]
        group = sess.fig10_group
        old_streams = list(group.streams)
        sess.add_group_stream(group, sess.conns[to_index])
        migrations.append(sim.now)

        def finish_window():
            for stream in old_streams:
                sess.remove_group_stream(group, stream)

        sim.schedule(MIGRATION_WINDOW, finish_window)

    # Migrate to IPv6 a third of the way in, back to IPv4 at two thirds.
    expected_duration = SIZE * 8 / RATE
    sim.at(1.0 + expected_duration / 3, migrate, 1)
    sim.at(1.0 + 2 * expected_duration / 3, migrate, 0)
    p0 = topo.path(0)
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    sim.run(until=240)
    return probe.series(), done, migrations, topo


def test_fig10_app_triggered_migration(benchmark):
    series, done, migrations, topo = run_once(benchmark, run_migration)
    print(banner("Fig. 10 -- app-triggered migration during a %d MiB "
                 "download" % (SIZE >> 20)))
    print("migration windows at: %s" %
          ", ".join("%.1fs" % t for t in migrations))
    print("   " + fmt_series(series, every=4))
    assert done, "download did not finish"
    assert len(migrations) == 2

    single_path_mbps = RATE / 1e6

    def window_peak(t0):
        values = [v for t, v in series if t0 <= t <= t0 +
                  MIGRATION_WINDOW + 0.5]
        return max(values) if values else 0.0

    def steady(t0, t1):
        values = [v for t, v in series if t0 <= t < t1]
        return sum(values) / len(values) if values else 0.0

    # Paper: "peaks during the migration windows" -- both paths carry
    # data, so goodput exceeds one path's capacity.
    assert window_peak(migrations[0]) > single_path_mbps * 1.1
    assert window_peak(migrations[1]) > single_path_mbps * 1.1
    # Goodput is sustained between migrations (no collapse).
    gap_start = migrations[0] + MIGRATION_WINDOW + 0.5
    gap_end = migrations[1] - 0.25
    if gap_end - gap_start >= 0.5:
        assert steady(gap_start, gap_end) > single_path_mbps * 0.6
    # Both paths really carried the object at some point.
    assert topo.path(0).s2c.stats.tx_bytes > SIZE / 4
    assert topo.path(1).s2c.stats.tx_bytes > SIZE / 8
