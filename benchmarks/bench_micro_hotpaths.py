"""Micro-benchmarks of the real Python hot paths.

These time actual library code (not the cost model): record sealing and
opening, the Fig. 2 IV derivation, tag-trial demultiplexing, the
reordering heap, the SACK scoreboard, and eBPF VM dispatch.
"""

import random

from repro.core.crypto_context import (
    StreamCryptoContext,
    derive_stream_iv,
    record_nonce,
)
from repro.core.record import decode_inner, encode_inner
from repro.core.record import RECORD_TYPE_STREAM_DATA
from repro.core.reorder import ReorderBuffer
from repro.crypto.aead import Aes128Gcm, Chacha20Poly1305, NullTagCipher
from repro.crypto.aes import Aes128
from repro.crypto.gcm import Ghash
from repro.ebpf import EbpfVm, assemble
from repro.ebpf.cc_hooks import EbpfCongestionControl
from repro.ebpf.programs import cubic_bytecode
from repro.net import Simulator
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.ranges import RangeSet

PAYLOAD = b"\xAB" * 16384
BASE_IV = bytes(range(12))
NONCE = b"\x00" * 12


def test_record_frame_encode(benchmark):
    result = benchmark(encode_inner, RECORD_TYPE_STREAM_DATA, PAYLOAD,
                       b"\x01")
    assert len(result) == len(PAYLOAD) + 3


def test_record_frame_decode(benchmark):
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, PAYLOAD, b"\x01")
    record = benchmark(decode_inner, inner)
    assert record.payload == PAYLOAD


def test_stream_seal_null_cipher(benchmark):
    ctx = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 1)
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, PAYLOAD)

    def seal():
        ctx.send_seq = 0
        return ctx.seal(inner)

    wire = benchmark(seal)
    assert len(wire) == len(inner) + 16 + 5


def test_stream_open_null_cipher(benchmark):
    tx = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 1)
    rx = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 1)
    inner = encode_inner(RECORD_TYPE_STREAM_DATA, PAYLOAD)
    wire = tx.seal(inner)
    out = benchmark(rx.open_at, wire, 0)
    assert out == inner


def test_chacha20poly1305_seal_1500(benchmark):
    """The real cipher on a packet-sized record (pure Python; the
    SWAR-batched keystream makes these usable at simulator scale)."""
    cipher = Chacha20Poly1305(b"K" * 32)
    sealed = benchmark(cipher.seal, NONCE, b"z" * 1500, b"hdr")
    assert len(sealed) == 1516


def test_chacha20poly1305_open_1500(benchmark):
    cipher = Chacha20Poly1305(b"K" * 32)
    sealed = cipher.seal(NONCE, b"z" * 1500, b"hdr")
    assert benchmark(cipher.open, NONCE, sealed, b"hdr") == b"z" * 1500


def test_chacha20poly1305_seal_16k(benchmark):
    cipher = Chacha20Poly1305(b"K" * 32)
    sealed = benchmark(cipher.seal, NONCE, PAYLOAD, b"hdr")
    assert len(sealed) == len(PAYLOAD) + 16


def test_chacha20poly1305_open_16k(benchmark):
    cipher = Chacha20Poly1305(b"K" * 32)
    sealed = cipher.seal(NONCE, PAYLOAD, b"hdr")
    assert benchmark(cipher.open, NONCE, sealed, b"hdr") == PAYLOAD


def test_aes128gcm_seal_1500(benchmark):
    cipher = Aes128Gcm(b"K" * 16)
    sealed = benchmark(cipher.seal, NONCE, b"z" * 1500, b"hdr")
    assert len(sealed) == 1516


def test_aes128gcm_open_1500(benchmark):
    cipher = Aes128Gcm(b"K" * 16)
    sealed = cipher.seal(NONCE, b"z" * 1500, b"hdr")
    assert benchmark(cipher.open, NONCE, sealed, b"hdr") == b"z" * 1500


def test_aes128gcm_seal_16k(benchmark):
    cipher = Aes128Gcm(b"K" * 16)
    sealed = benchmark(cipher.seal, NONCE, PAYLOAD, b"hdr")
    assert len(sealed) == len(PAYLOAD) + 16


def test_aes128gcm_open_16k(benchmark):
    cipher = Aes128Gcm(b"K" * 16)
    sealed = cipher.seal(NONCE, PAYLOAD, b"hdr")
    assert benchmark(cipher.open, NONCE, sealed, b"hdr") == PAYLOAD


def test_ghash_digest_16k(benchmark):
    ghash = Ghash(Aes128(b"K" * 16).encrypt_block(b"\x00" * 16))
    tag = benchmark(ghash.digest, b"hdr", PAYLOAD)
    assert len(tag) == 16


def test_send_buffer_write_peek_ack_churn(benchmark):
    """The bulk-transfer pattern: app writes, MSS-sized peeks, rolling
    cumulative ACKs (amortised-O(1) with the chunk-list layout)."""
    app_chunk = b"\xCD" * 4096

    def run():
        buf = SendBuffer(base_seq=0, capacity=1 << 20)
        seq = acked = 0
        total = 0
        for _ in range(128):
            buf.write(app_chunk)
            while seq < buf.end_seq:
                total += len(buf.peek(seq, 1460))
                seq = min(seq + 1460, buf.end_seq)
                if seq - acked >= 8 * 1460:
                    acked = seq
                    buf.ack_to(acked)
        return total

    assert benchmark(run) == 128 * 4096


def test_send_buffer_sequential_peek_cursor(benchmark):
    """The train builder's access pattern: many small app writes, then
    MSS-stride peeks walking the whole buffer.  The peek cursor makes
    each step O(1) where a cold bisect pays O(log chunks)."""
    buf = SendBuffer(base_seq=0, capacity=None)
    for _ in range(2048):
        buf.write(b"\xAB" * 512)

    def run():
        total = 0
        seq = 0
        end = buf.end_seq
        while seq < end:
            total += len(buf.peek(seq, 1460))
            seq += 1460
        return total

    assert benchmark(run) == 2048 * 512


def test_receive_buffer_window_with_ooo(benchmark):
    """window() is computed per outgoing segment; with the cached
    out-of-order byte count it stays O(1) however fragmented."""
    buf = ReceiveBuffer(rcv_nxt=0, capacity=1 << 20)
    for i in range(200):
        buf.offer(10000 + 3000 * i, b"x" * 1460)

    def run():
        total = 0
        for _ in range(1000):
            total += buf.window()
        return total

    assert benchmark(run) > 0


def test_simulator_rto_cancel_churn(benchmark):
    """The RTO arm/cancel pattern TCP generates on every ACK: without
    lazy-cancellation compaction the heap grows with dead timers."""

    def run():
        sim = Simulator()
        timer = [None]

        def rearm(n):
            if timer[0] is not None:
                timer[0].cancel()
            if n > 0:
                timer[0] = sim.schedule(10.0, lambda: None)
                sim.schedule(0.001, rearm, n - 1)
            else:
                timer[0].cancel()

        sim.schedule(0.0, rearm, 2000)
        sim.run()
        return sim.pending_events

    assert benchmark(run) == 0


def test_iv_derivation_fig2(benchmark):
    iv = benchmark(derive_stream_iv, BASE_IV, 12345)
    assert len(iv) == 12


def test_nonce_xor(benchmark):
    iv = derive_stream_iv(BASE_IV, 7)
    nonce = benchmark(record_nonce, iv, 123456789)
    assert len(nonce) == 12


def test_tag_trial_miss_then_hit(benchmark):
    """The demux worst case: one failed trial (wrong stream) then the
    hit -- the cost footnote 2 of the paper discusses."""
    tx = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 3)
    wrong = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 5)
    right = StreamCryptoContext(NullTagCipher(b"k" * 32), BASE_IV, 3)
    wire = tx.seal(encode_inner(RECORD_TYPE_STREAM_DATA, PAYLOAD))

    def demux():
        assert not wrong.verify_at(wire, 0)
        assert right.verify_at(wire, 0)

    benchmark(demux)


def test_reorder_heap_interleaved(benchmark):
    order = list(range(256))
    random.Random(4).shuffle(order)

    def run():
        heap = ReorderBuffer()
        released = 0
        for seq in order:
            released += len(heap.push(seq, b""))
        return released

    assert benchmark(run) == 256


def test_rangeset_scoreboard_churn(benchmark):
    spans = [(i * 3000 % 50000, i * 3000 % 50000 + 1460)
             for i in range(200)]

    def run():
        ranges = RangeSet()
        for start, end in spans:
            ranges.add(start, end)
        for start, end in spans[::2]:
            ranges.subtract(start, end)
        return ranges.total

    assert benchmark(run) > 0


def test_bus_emit_no_subscribers(benchmark):
    """The permanently-wired instrumentation cost when nobody listens:
    must stay a couple of attribute lookups per emit."""
    sim = Simulator()
    bus = sim.bus

    def run():
        for _ in range(1000):
            bus.emit("tcp", "segment_sent", {"conn": 1})
        return bus.events_emitted

    assert benchmark(run) == 0


def test_bus_emit_unwatched_category(benchmark):
    """Hot-path emits on a category no subscriber wants: the memoised
    per-category wants check makes this O(1) instead of a subscriber
    scan + list copy per emit."""
    sim = Simulator()
    bus = sim.bus
    for _ in range(8):
        bus.subscribe(lambda event: None, categories=("session",))

    def run():
        for _ in range(1000):
            bus.emit("tcp", "segment_sent", {"conn": 1})
        return bus.events_emitted

    assert benchmark(run) == 0


def test_bus_wants_memoised(benchmark):
    """wants() guards expensive data-dict construction on hot paths;
    with the mutation-invalidated memo it is one dict lookup."""
    sim = Simulator()
    bus = sim.bus
    for _ in range(8):
        bus.subscribe(lambda event: None, categories=("session", "tls"))

    def run():
        hits = 0
        for _ in range(1000):
            if bus.wants("perf"):
                hits += 1
            if bus.wants("tls"):
                hits += 1
        return hits

    assert benchmark(run) == 1000


def test_ebpf_vm_dispatch(benchmark):
    program = assemble("""
        mov r0, 0
        ldxdw r2, [r1+0]
        add r0, r2
        exit
    """)
    vm = EbpfVm(program)
    ctx = bytearray((42).to_bytes(8, "little"))
    assert benchmark(vm.run, ctx) == 42


def test_ebpf_cubic_on_ack(benchmark):
    cc = EbpfCongestionControl.from_bytecode(1460, cubic_bytecode())
    cc.cwnd = 100 * 1460
    cc.on_loss(0.0)
    state = {"now": 1.0}

    def ack():
        state["now"] += 0.02
        cc.on_ack(1460, 0.02, state["now"], int(cc.cwnd))

    benchmark(ack)
