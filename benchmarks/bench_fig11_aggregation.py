"""Fig. 11: bandwidth aggregation, TCPLS vs MPTCP, 16 KiB records.

A 60 MiB transfer starts on one 25 Mbps path; the second path becomes
available at t = 5 s.  Both stacks should converge to ~50 Mbps.  The
paper's two observations: (1) MPTCP lags behind after the path appears
(kernel interface-configuration delay), and (2) TCPLS's goodput is
*less stable* because it reorders 16,384-byte records where MPTCP
reorders ~1,460-byte segments.
"""

from conftest import run_once

from common import (
    banner,
    build_mptcp_upload,
    build_tcpls_group_upload,
    fmt_series,
    scaled,
)
from repro.net import Simulator, build_multipath

SIZE = scaled(60 << 20)
SECOND_PATH_AT = 5.0
MPTCP_CONFIG_DELAY = 1.5


def run_tcpls(record_payload=16384):
    sim = Simulator(seed=11)
    topo = build_multipath(sim, n_paths=2)
    client, sessions, probe, done = build_tcpls_group_upload(
        sim, topo, SIZE, record_payload=record_payload, n_paths=1)

    def enable_second_path():
        client.join(topo.path(1).client_addr)

        def attach(conn):
            group = list(client.groups.values())[0]
            client.add_group_stream(group, conn)
        client.on_join = attach

    sim.at(SECOND_PATH_AT, enable_second_path)
    sim.run(until=120)
    return probe, done


def run_mptcp():
    sim = Simulator(seed=11)
    topo = build_multipath(sim, n_paths=2)
    client, probe, done = build_mptcp_upload(
        sim, topo, SIZE, n_paths=1, config_delay=MPTCP_CONFIG_DELAY)
    sim.at(SECOND_PATH_AT, client.add_local_address,
           topo.path(1).client_addr)
    sim.run(until=120)
    return probe, done


def run_all():
    return {"tcpls": run_tcpls(), "mptcp": run_mptcp()}


def test_fig11_bandwidth_aggregation(benchmark):
    results = run_once(benchmark, run_all)
    print(banner("Fig. 11 -- aggregation (2nd path at t=5s), %d MiB, "
                 "16 KiB records" % (SIZE >> 20)))
    stats = {}
    for proto, (probe, done) in results.items():
        end = done[0] - 0.25 if done else SECOND_PATH_AT + 15.0
        # Steady aggregated window, clamped so short (scaled-down)
        # transfers still have at least ~1.5 s to average over.
        start = min(SECOND_PATH_AT + 3.0, end - 1.5)
        mean = probe.mean_between(start, end)
        std = probe.stddev_between(start, end)
        before = probe.mean_between(2.0, SECOND_PATH_AT)
        ramp = probe.mean_between(SECOND_PATH_AT,
                                  SECOND_PATH_AT + MPTCP_CONFIG_DELAY)
        stats[proto] = (before, ramp, mean, std, done)
        print("%-6s before=%5.1f ramp=%5.1f aggregated=%5.1f "
              "(stddev %4.1f) finished=%s" % (
                  proto, before, ramp, mean, std,
                  "%.1fs" % done[0] if done else "DNF"))
        print("   " + fmt_series(probe.series(), every=8))

    tcpls_before, tcpls_ramp, tcpls_mean, tcpls_std, tcpls_done = \
        stats["tcpls"]
    mptcp_before, mptcp_ramp, mptcp_mean, mptcp_std, mptcp_done = \
        stats["mptcp"]
    # Single path first: ~25 Mbps for both.
    assert 18 < tcpls_before <= 25.5
    assert 18 < mptcp_before <= 25.5
    # Both aggregate to ~50 Mbps.
    assert tcpls_mean > 40
    assert mptcp_mean > 40
    # (1) MPTCP is delayed by interface configuration; TCPLS ramps as
    # soon as the application joins the path.
    assert tcpls_ramp > mptcp_ramp
    # (2) TCPLS with 16 KiB records shows larger goodput variability.
    assert tcpls_std > mptcp_std
    assert tcpls_done and mptcp_done
