"""Shared scenario builders for the figure-regeneration benches.

Each experiment mirrors a Sec. 5 evaluation setup.  Figures are
regenerated as printed series (time, goodput) plus summary rows; the
benches assert the *shape* results the paper reports (who wins, rough
factors, crossovers) rather than absolute testbed numbers.

Set ``REPRO_SCALE`` (default 1.0) to scale transfer sizes, e.g. 0.25
for a quick pass.
"""

import os

from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack
from repro.core import TcplsClient, TcplsServer
from repro.baselines.mptcp import MptcpClient, MptcpServer

PSK = b"bench-psk"

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

#: directory for qlog traces; set by the ``--qlog`` pytest option (see
#: conftest) or the REPRO_QLOG environment variable.  None = disabled.
QLOG_DIR = os.environ.get("REPRO_QLOG") or None

#: (tracer, filename) pairs pending a dump at session finish
_PENDING_TRACES = []

#: categories captured for benchmark traces — lifecycle + recovery +
#: congestion dynamics, but not per-record events (a full-scale figure
#: run seals hundreds of thousands of records)
TRACE_CATEGORIES = ("session", "recovery", "tcp", "link")


def scaled(size):
    return max(int(size * SCALE), 1 << 20)


def maybe_trace(sim, name, categories=TRACE_CATEGORIES):
    """Arm a qlog tracer on this run when ``--qlog``/REPRO_QLOG is set.

    Returns the tracer (or None when tracing is disabled).  The trace
    is written as ``<dir>/<name>.qlog`` once the pytest session ends.
    """
    if not QLOG_DIR:
        return None
    from repro.qlog import QlogTracer

    tracer = QlogTracer(sim, title=name)
    sim.bus.subscribe(tracer, categories=categories)
    _PENDING_TRACES.append((tracer, "%s.qlog" % name))
    return tracer


def dump_traces():
    """Write all pending traces; returns the paths written."""
    if not _PENDING_TRACES:
        return []
    os.makedirs(QLOG_DIR, exist_ok=True)
    paths = []
    while _PENDING_TRACES:
        tracer, filename = _PENDING_TRACES.pop(0)
        path = os.path.join(QLOG_DIR, filename)
        tracer.dump(path)
        paths.append(path)
    return paths


class GoodputProbe:
    """Samples application goodput over fixed intervals."""

    def __init__(self, sim, interval=0.25):
        self.sim = sim
        self.interval = interval
        self.samples = []        # (time, mbps)
        self._received = 0
        self._last = 0
        self._stop = False
        sim.schedule(interval, self._tick)

    def account(self, nbytes):
        self._received += nbytes

    @property
    def total(self):
        return self._received

    def stop(self):
        self._stop = True

    def _tick(self):
        mbps = (self._received - self._last) * 8 / self.interval / 1e6
        self.samples.append((round(self.sim.now, 3), round(mbps, 2)))
        self._last = self._received
        if not self._stop:
            self.sim.schedule(self.interval, self._tick)

    def series(self):
        return list(self.samples)

    def mean_between(self, start, end):
        values = [v for t, v in self.samples if start <= t < end]
        return sum(values) / len(values) if values else 0.0

    def stddev_between(self, start, end):
        values = [v for t, v in self.samples if start <= t < end]
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5


def build_tcpls_download(sim, topo, size, uto=0.25, failover=True,
                         record_payload=16384, server_cc="cubic",
                         client_kwargs=None):
    """Client requests; server pushes ``size`` bytes on one stream.

    Returns (client, server_sessions, probe, done_times).
    """
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK, cc=server_cc,
                         record_payload=record_payload)
    client = TcplsClient(sim, cstack, psk=PSK,
                         record_payload=record_payload,
                         **(client_kwargs or {}))
    probe = GoodputProbe(sim)
    sessions = []
    done = []

    def on_session(sess):
        sessions.append(sess)
        if failover:
            sess.enable_failover()

        def on_stream_data(stream):
            if stream.recv().startswith(b"GET"):
                out = sess.create_stream(sess.conns[0])
                out.send(b"F" * size)
                out.close()
        sess.on_stream_data = on_stream_data

    server.on_session = on_session

    def on_client_stream(stream):
        data = stream.recv()
        probe.account(len(data))
        if probe.total >= size and not done:
            done.append(sim.now)
            probe.stop()

    client.on_stream_data = on_client_stream

    def on_ready(_session):
        if uto is not None:
            client.set_user_timeout(client.conns[0], uto)
        request = client.create_stream(client.conns[0])
        request.send(b"GET /file")

    client.on_ready = on_ready
    p0 = topo.path(0)
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    return client, sessions, probe, done


def build_tcpls_group_upload(sim, topo, size, record_payload=16384,
                             n_paths=2):
    """Client aggregates ``n_paths`` connections and uploads ``size``
    bytes on a coupled group.  Returns (client, sessions, probe, done).
    """
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = TcplsServer(sim, sstack, 443, psk=PSK,
                         record_payload=record_payload)
    client = TcplsClient(sim, cstack, psk=PSK,
                         record_payload=record_payload)
    probe = GoodputProbe(sim)
    sessions = []
    done = []

    def on_session(sess):
        sessions.append(sess)

        def on_group_data(group):
            probe.account(len(group.recv()))
            if group.complete and not done:
                done.append(sim.now)
                probe.stop()
        sess.on_group_data = on_group_data

    server.on_session = on_session
    state = {"joined": 1}

    def start_upload():
        group = client.create_coupled_group(client.alive_connections())
        group.send(b"U" * size)
        group.close()

    def on_join(_conn):
        state["joined"] += 1
        if state["joined"] == n_paths:
            start_upload()

    client.on_join = on_join
    if n_paths == 1:
        client.on_ready = lambda s: start_upload()
    else:
        client.on_ready = lambda s: [
            client.join(topo.path(i).client_addr)
            for i in range(1, n_paths)
        ]
    p0 = topo.path(0)
    client.connect(p0.client_addr, Endpoint(p0.server_addr, 443))
    return client, sessions, probe, done


def build_mptcp_upload(sim, topo, size, path_manager="fullmesh",
                       n_paths=2, config_delay=0.0):
    """MPTCP client uploads ``size`` bytes; returns (client, probe, done)."""
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    server = MptcpServer(sim, sstack, 443)
    probe = GoodputProbe(sim)
    done = []

    def on_connection(conn):
        def on_data(c):
            probe.account(len(c.recv()))
            if c.complete and not done:
                done.append(sim.now)
                probe.stop()
        conn.on_data = on_data

    server.on_connection = on_connection
    client = MptcpClient(sim, cstack, path_manager=path_manager,
                         config_delay=config_delay)
    pairs = [(p.client_addr, p.server_addr) for p in topo.paths[:n_paths]]
    client.connect(pairs, 443)
    client.on_established = lambda c: (c.send(b"M" * size), c.close())
    return client, probe, done


def fmt_series(series, every=4):
    """Render a (time, value) series compactly."""
    picked = series[::every]
    return "  ".join("%.1fs:%5.1f" % (t, v) for t, v in picked)


def banner(title):
    line = "=" * len(title)
    return "\n%s\n%s" % (title, line)
