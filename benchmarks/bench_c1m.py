#!/usr/bin/env python
"""C1M benchmark: one engine, thousands of concurrent TCPLS sessions.

Drives the :mod:`repro.perf.loadgen` churn script -- connect waves,
request/response transfers, MPJOINs, a scripted path outage with
failovers, close/reconnect churn -- against a
:class:`~repro.core.drivers.multi.MultiSessionServer` and reports
sessions/sec, p99 handshake and transfer latency, and bytes/s per
core.

Default shape is the acceptance run: 10k sessions concurrently alive
inside ONE process.  ``--shards N`` instead fans the population out
over N worker processes in the deterministic
:class:`~repro.core.drivers.multi.ShardLayout` (listener per shard,
one core each), merged through :func:`repro.perf.sweep.run_sweep` so
the output is byte-identical for any ``--jobs`` value.

The JSON envelope (``--json``) contains only simulator-time metrics --
same seed, same bytes, every run.  Wall-clock timing goes to stderr
and never into the file.

``--fluid SCENARIO`` switches to the fluid fast-forward populations
(:class:`~repro.perf.loadgen.FluidScenarioHarness`): steady-state
flows advance in closed form, so ``--flows 100000`` completes in
seconds of wall clock where the packet path needs minutes.

Usage::

    PYTHONPATH=src python benchmarks/bench_c1m.py --json benchmarks/BENCH_6.json
    PYTHONPATH=src python benchmarks/bench_c1m.py --sessions 20000 --shards 4 --jobs 4
    PYTHONPATH=src python benchmarks/bench_c1m.py --fluid fairness --flows 100000
"""

import argparse
import json
import sys
import time

from repro.perf.loadgen import (
    FluidScenarioHarness,
    merge_shards,
    run_fluid_scenario,
    run_shard,
    shard_points,
)
from repro.perf.sweep import run_sweep


def run_fluid(args):
    """The 100k-flow fluid fast-forward benchmark path."""
    scenarios = (list(FluidScenarioHarness.SCENARIOS)
                 if args.fluid == "all" else [args.fluid])
    config = {
        "mode": "fluid",
        "scenarios": scenarios,
        "flows": args.flows,
        "seed": args.seed,
    }
    started = time.monotonic()
    results = []
    scenario_walls = {}
    for scenario in scenarios:
        t0 = time.monotonic()
        metrics = run_fluid_scenario(
            scenario=scenario, flows=args.flows, seed=args.seed)
        scenario_walls[scenario] = round(time.monotonic() - t0, 3)
        print("c1m-fluid: %s: %d/%d flows, %d leaps (%.1fs sim leapt), "
              "%d solves, wall %.1fs"
              % (scenario, metrics["flows_completed"], metrics["flows"],
                 metrics["fluid_leaps"], metrics["fluid_leapt_time"],
                 metrics["fluid_solves"], scenario_walls[scenario]),
              file=sys.stderr)
        results.append(metrics)
    wall = time.monotonic() - started
    envelope = {
        "bench": "c1m-fluid",
        "config": config,
        "results": results,
        "summary": {
            "flows": sum(r["flows"] for r in results),
            "flows_completed": sum(r["flows_completed"] for r in results),
            "fluid_leaps": sum(r["fluid_leaps"] for r in results),
            "fluid_solves": sum(r["fluid_solves"] for r in results),
            "stalls": sum(r["stalls"] for r in results),
            "migrations": sum(r["migrations"] for r in results),
            "heap_compactions": sum(r["heap_compactions"] for r in results),
            "train_peels": sum(r["train_peels"] for r in results),
        },
    }
    if args.compare_packet:
        # Before/after record: the same machine runs the packet-level
        # acceptance C1M so BENCH_7-style files carry both wall clocks.
        # Wall timing is machine-dependent and only included under this
        # flag -- the default envelope stays deterministic.
        print("c1m-fluid: running packet-level baseline (%d sessions)..."
              % args.sessions, file=sys.stderr)
        t0 = time.monotonic()
        packet = run_shard(sessions=args.sessions, seed=args.seed,
                           budget_bytes=args.budget)
        packet_wall = round(time.monotonic() - t0, 3)
        envelope["wall_clock"] = {
            "note": "machine-dependent; recorded by --compare-packet",
            "fluid_scenarios_s": scenario_walls,
            "fluid_total_s": round(time.monotonic() - started
                                   - packet_wall, 3),
            "packet_c1m_s": packet_wall,
            "packet_sessions": args.sessions,
            "fluid_flows": args.flows,
        }
        print("c1m-fluid: packet baseline %d sessions in %.1fs wall"
              % (args.sessions, packet_wall), file=sys.stderr)
    text = json.dumps(envelope, sort_keys=True, indent=2) + "\n"
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    print("c1m-fluid: %d scenario(s) x %d flows, wall %.1fs total"
          % (len(scenarios), args.flows, wall), file=sys.stderr)
    incomplete = envelope["summary"]["flows"] \
        - envelope["summary"]["flows_completed"]
    if incomplete:
        print("c1m-fluid: WARNING: %d flows never completed" % incomplete,
              file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=10000,
                        help="total concurrent sessions (default 10000)")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker-process shards (default 1: the "
                             "single-process acceptance run)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for --shards > 1")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--budget", type=int, default=256 * 1024,
                        help="per-session receive-memory budget (bytes)")
    parser.add_argument("--fluid", metavar="SCENARIO",
                        choices=list(FluidScenarioHarness.SCENARIOS)
                        + ["all"],
                        help="run a fluid fast-forward population instead "
                             "of packet-level sessions: %s, or 'all'"
                             % "/".join(FluidScenarioHarness.SCENARIOS))
    parser.add_argument("--flows", type=int, default=100_000,
                        help="flow population for --fluid (default 100000)")
    parser.add_argument("--compare-packet", action="store_true",
                        help="with --fluid: also run the packet-level "
                             "C1M and record both wall clocks in the "
                             "envelope (machine-dependent)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic envelope here")
    args = parser.parse_args(argv)

    if args.fluid:
        return run_fluid(args)

    config = {
        "sessions": args.sessions,
        "shards": args.shards,
        "seed": args.seed,
        "budget_bytes": args.budget,
    }
    started = time.monotonic()
    if args.shards == 1:
        shard_results = [run_shard(sessions=args.sessions, seed=args.seed,
                                   budget_bytes=args.budget)]
    else:
        points = shard_points(args.sessions, args.shards, seed=args.seed,
                              budget_bytes=args.budget)
        shard_results = []
        for result in run_sweep(points, jobs=args.jobs):
            if "error" in result:
                print("c1m: shard %s failed: %s"
                      % (result["name"], result["error"]),
                      file=sys.stderr)
                return 1
            shard_results.append(result["metrics"])
    wall = time.monotonic() - started

    summary = merge_shards(shard_results)
    envelope = {
        "bench": "c1m",
        "config": config,
        "results": shard_results,
        "summary": summary,
    }
    text = json.dumps(envelope, sort_keys=True, indent=2) + "\n"
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    print("c1m: %d sessions / %d shard(s): peak %d concurrent, "
          "%d transfers, %d failovers, %.1f sessions/s (sim), "
          "%.0f bytes/s/core (sim), wall %.1fs"
          % (args.sessions, args.shards,
             summary["peak_concurrent_sessions"],
             summary["transfers_completed"], summary["failovers"],
             summary["sessions_per_sec"],
             summary["bytes_per_core_per_s"], wall),
          file=sys.stderr)
    if summary["table_end"] or summary["sessions_end"]:
        print("c1m: WARNING: %d table entries / %d sessions leaked"
              % (summary["table_end"], summary["sessions_end"]),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
