#!/usr/bin/env python
"""C1M benchmark: one engine, thousands of concurrent TCPLS sessions.

Drives the :mod:`repro.perf.loadgen` churn script -- connect waves,
request/response transfers, MPJOINs, a scripted path outage with
failovers, close/reconnect churn -- against a
:class:`~repro.core.drivers.multi.MultiSessionServer` and reports
sessions/sec, p99 handshake and transfer latency, and bytes/s per
core.

Default shape is the acceptance run: 10k sessions concurrently alive
inside ONE process.  ``--shards N`` instead fans the population out
over N worker processes in the deterministic
:class:`~repro.core.drivers.multi.ShardLayout` (listener per shard,
one core each), merged through :func:`repro.perf.sweep.run_sweep` so
the output is byte-identical for any ``--jobs`` value.

The JSON envelope (``--json``) contains only simulator-time metrics --
same seed, same bytes, every run.  Wall-clock timing goes to stderr
and never into the file.

Usage::

    PYTHONPATH=src python benchmarks/bench_c1m.py --json benchmarks/BENCH_6.json
    PYTHONPATH=src python benchmarks/bench_c1m.py --sessions 20000 --shards 4 --jobs 4
"""

import argparse
import json
import sys
import time

from repro.perf.loadgen import merge_shards, run_shard, shard_points
from repro.perf.sweep import run_sweep


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=10000,
                        help="total concurrent sessions (default 10000)")
    parser.add_argument("--shards", type=int, default=1,
                        help="worker-process shards (default 1: the "
                             "single-process acceptance run)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for --shards > 1")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--budget", type=int, default=256 * 1024,
                        help="per-session receive-memory budget (bytes)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the deterministic envelope here")
    args = parser.parse_args(argv)

    config = {
        "sessions": args.sessions,
        "shards": args.shards,
        "seed": args.seed,
        "budget_bytes": args.budget,
    }
    started = time.monotonic()
    if args.shards == 1:
        shard_results = [run_shard(sessions=args.sessions, seed=args.seed,
                                   budget_bytes=args.budget)]
    else:
        points = shard_points(args.sessions, args.shards, seed=args.seed,
                              budget_bytes=args.budget)
        shard_results = []
        for result in run_sweep(points, jobs=args.jobs):
            if "error" in result:
                print("c1m: shard %s failed: %s"
                      % (result["name"], result["error"]),
                      file=sys.stderr)
                return 1
            shard_results.append(result["metrics"])
    wall = time.monotonic() - started

    summary = merge_shards(shard_results)
    envelope = {
        "bench": "c1m",
        "config": config,
        "results": shard_results,
        "summary": summary,
    }
    text = json.dumps(envelope, sort_keys=True, indent=2) + "\n"
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    print("c1m: %d sessions / %d shard(s): peak %d concurrent, "
          "%d transfers, %d failovers, %.1f sessions/s (sim), "
          "%.0f bytes/s/core (sim), wall %.1fs"
          % (args.sessions, args.shards,
             summary["peak_concurrent_sessions"],
             summary["transfers_completed"], summary["failovers"],
             summary["sessions_per_sec"],
             summary["bytes_per_core_per_s"], wall),
          file=sys.stderr)
    if summary["table_end"] or summary["sessions_end"]:
        print("c1m: WARNING: %d table entries / %d sessions leaked"
              % (summary["table_end"], summary["sessions_end"]),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
