"""Sec. 4.5: session establishment latency.

The paper combines TLS 1.3 0-RTT with TCP Fast Open so "the TCPLS
handshake can be sent together with the TCP SYN".  Measure the time
from connect() to (a) session ready and (b) first request byte at the
server, for a cold handshake vs a TFO+0-RTT resumption, on a 10 ms
one-way path.
"""

from conftest import run_once

from common import PSK, banner
from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint
from repro.tcp import TcpStack

RTT = 0.020


def run_establishment():
    sim = Simulator(seed=45)
    topo = build_multipath(sim, n_paths=1, families=[4])
    cstack, sstack = TcpStack(sim, topo.client), TcpStack(sim, topo.server)
    cstack.tfo_enabled = True
    sstack.tfo_enabled = True
    server = TcplsServer(sim, sstack, 443, psk=PSK)
    request_at = []
    server.on_session = lambda sess: setattr(
        sess, "on_stream_data",
        lambda stream: request_at.append(sim.now) if stream.recv()
        else None,
    )
    p = topo.path(0)

    results = {}

    def one(label, tfo, early_data):
        start = sim.now
        client = TcplsClient(sim, cstack, psk=PSK)
        ready = []
        client.on_ready = lambda s: ready.append(sim.now - start)
        before = len(request_at)
        client.connect(p.client_addr, Endpoint(p.server_addr, 443),
                       tfo=tfo, early_data=early_data)
        if not early_data:
            client.on_ready = lambda s: (
                ready.append(sim.now - start) if not ready else None,
                client.create_stream(client.conns[0]).send(b"GET /"),
            )
        sim.run(until=start + 2.0)
        first_request = (request_at[before] - start
                         if len(request_at) > before else None)
        results[label] = (ready[0] if ready else None, first_request)
        client.conns[0].tcp.close()
        sim.run(until=sim.now + 1.0)

    one("cold handshake", tfo=False, early_data=b"")
    one("tfo + 0-rtt", tfo=True, early_data=b"GET /")
    return results


def test_sec45_establishment_latency(benchmark):
    results = run_once(benchmark, run_establishment)
    print(banner("Sec. 4.5 -- establishment latency (RTT %.0f ms)"
                 % (RTT * 1000)))
    for label, (ready, first_request) in results.items():
        print("%-15s ready=%s first-request-at-server=%s" % (
            label,
            "%.0f ms" % (ready * 1000) if ready else "-",
            "%.0f ms" % (first_request * 1000) if first_request else "-",
        ))
    cold_ready, cold_request = results["cold handshake"]
    fast_ready, fast_request = results["tfo + 0-rtt"]
    # Cold: TCP (1 RTT) + TLS (1 RTT) = 2 RTT to ready, request at 2.5.
    assert abs(cold_ready - 2 * RTT) < 0.01
    # TFO+0-RTT: ClientHello and request ride the SYN.
    assert fast_ready < cold_ready - 0.015
    assert fast_request < cold_request - 0.015
    # The request reaches the server within about one RTT of connect().
    assert fast_request < 2 * RTT
