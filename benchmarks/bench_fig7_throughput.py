"""Fig. 7: raw throughput on the 40 Gbps testbed (cost model).

Regenerates both panels (Gbps and packets per second) for every stack x
MTU combination, and checks the paper's qualitative claims.
"""

import pytest

from conftest import run_once

from repro.baselines.quic.impls import IMPL_PROFILES
from repro.perf import (
    CpuProfile,
    QuicSenderModel,
    TcplsModel,
    TcplsVariant,
    TlsTcpModel,
    solve_throughput_gbps,
)

PAPER_GBPS = {
    ("tls-tcp", 1500): 10.3,
    ("tls-tcp", 9000): 12.6,
    ("tcpls", 1500): 10.8,
    ("tcpls", 9000): 12.4,
    ("tcpls-failover", 1500): 9.66,
    ("tcpls-multipath", 1500): 8.8,
    ("quicly", 1500): 4.4,
    ("msquic", 1500): 1.96,
}


def build_rows():
    cpu = CpuProfile()
    rows = []
    for mtu in (1500, 9000):
        stacks = [
            ("tls-tcp", TlsTcpModel(cpu, mtu=mtu), mtu - 40),
            ("tcpls", TcplsModel(cpu, mtu=mtu), mtu - 40),
            ("tcpls-failover",
             TcplsModel(cpu, mtu=mtu, variant=TcplsVariant.FAILOVER),
             mtu - 40),
            ("tcpls-multipath",
             TcplsModel(cpu, mtu=mtu, variant=TcplsVariant.MULTIPATH),
             mtu - 40),
        ]
        for name in ("quicly", "quicly-nogso", "msquic", "mvfst"):
            model = QuicSenderModel(cpu, IMPL_PROFILES[name], mtu=mtu)
            stacks.append((name, model, model.packet_payload))
        for name, model, unit in stacks:
            gbps = solve_throughput_gbps(model)
            kpps = gbps / 8 * 1e9 / unit / 1e3
            rows.append((name, mtu, gbps, kpps))
    return rows


def test_fig7_throughput_table(benchmark):
    rows = run_once(benchmark, build_rows)
    print("\nFig. 7 -- raw throughput (modelled testbed)")
    print("%-17s %6s %10s %10s %10s" % ("stack", "MTU", "Gbps", "kpps",
                                        "paper"))
    values = {}
    for name, mtu, gbps, kpps in rows:
        values[(name, mtu)] = gbps
        paper = PAPER_GBPS.get((name, mtu))
        print("%-17s %6d %10.2f %10.0f %10s" % (
            name, mtu, gbps, kpps,
            ("%.2f" % paper) if paper else "-"))

    # -- the paper's claims, as assertions -------------------------------
    # Calibrated points land within 15%.
    for key, expected in PAPER_GBPS.items():
        assert values[key] == pytest.approx(expected, rel=0.15), key
    # "TCPLS has similar throughput than TCP/TLS" / small 1500 advantage.
    assert values[("tcpls", 1500)] >= values[("tls-tcp", 1500)]
    # "Failover has a small impact on raw throughput."
    assert values[("tcpls-failover", 1500)] > 0.85 * values[("tcpls", 1500)]
    # "Coupling ... less than 10% below Failover."
    assert values[("tcpls-multipath", 1500)] > \
        0.9 * values[("tcpls-failover", 1500)]
    # "TCPLS with TSO is twice faster" than the fastest QUIC.
    fastest_quic = max(values[(n, 1500)]
                       for n in ("quicly", "msquic", "mvfst"))
    assert values[("tcpls", 1500)] >= 2 * fastest_quic
    # "quicly's performance decreases with jumbo frames but is still
    # faster than without GSO."
    assert values[("quicly", 9000)] < values[("quicly", 1500)]
    assert values[("quicly", 9000)] > values[("quicly-nogso", 9000)]
    # "mvfst was slower [than msquic] despite GSO."
    assert values[("mvfst", 1500)] < values[("msquic", 1500)]


def test_fig7_sensitivity_to_link(benchmark):
    """On a slower NIC the stacks converge to the link rate: the CPU
    differences only matter when the wire is fast enough."""

    def run():
        cpu = CpuProfile()
        tcpls = TcplsModel(cpu, mtu=1500)
        quicly = QuicSenderModel(cpu, IMPL_PROFILES["quicly"], mtu=1500)
        return (solve_throughput_gbps(tcpls, link_gbps=1.0),
                solve_throughput_gbps(quicly, link_gbps=1.0))

    tcpls_1g, quicly_1g = run_once(benchmark, run)
    print("\n1 Gbps link: tcpls=%.2f quicly=%.2f" % (tcpls_1g, quicly_1g))
    assert tcpls_1g == quicly_1g == 1.0
