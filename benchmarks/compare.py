"""Compare two benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/compare.py BASELINE.json NEW.json \
        [--threshold 0.2] [--metric min]

Both files are produced by ``pytest benchmarks/ --benchmark-only
--json PATH`` (see conftest.py).  A benchmark regresses when its
timing exceeds the baseline by more than ``--threshold`` (default
20%).  Exit status 1 on any regression, 0 otherwise; benchmarks
present on only one side are reported but never fail the run (new
benches need a first baseline, retired ones a refresh).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    out = {}
    for bench in doc.get("benchmarks", []):
        out[bench.get("name")] = bench
    return out


def pick_metric(bench, metric):
    value = bench.get(metric)
    if value is None:
        value = bench.get("mean")
    return value


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail if NEW regresses against BASELINE")
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("new", help="freshly produced benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed slowdown fraction (default 0.2)")
    parser.add_argument("--metric", choices=("min", "mean"), default="min",
                        help="statistic to compare (default min: least "
                             "noise-sensitive on a shared machine)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    new = load(args.new)

    regressions = []
    improved = 0
    compared = 0
    header = "%-48s %12s %12s %9s" % ("benchmark", "baseline", "new",
                                      "ratio")
    print(header)
    print("-" * len(header))
    for name in sorted(set(baseline) & set(new)):
        old_value = pick_metric(baseline[name], args.metric)
        new_value = pick_metric(new[name], args.metric)
        if not old_value or new_value is None:
            continue
        compared += 1
        ratio = new_value / old_value
        flag = ""
        if ratio > 1.0 + args.threshold:
            regressions.append((name, ratio, old_value, new_value))
            flag = "  REGRESSED"
        elif ratio < 1.0 - args.threshold:
            improved += 1
            flag = "  improved"
        print("%-48s %10.6fs %10.6fs %8.2fx%s"
              % (name[:48], old_value, new_value, ratio, flag))

    # Page-load cells additionally carry simulated PLT percentiles in
    # extra_info.  Sim time is deterministic, so these regress only when
    # behaviour (not machine load) changes -- compare them at the same
    # threshold, and always show the table for points that have them.
    plt_rows = []
    for name in sorted(set(baseline) & set(new)):
        old_extra = baseline[name].get("extra_info") or {}
        new_extra = new[name].get("extra_info") or {}
        if "plt_p50" not in new_extra and "plt_p50" not in old_extra:
            continue
        row = [name]
        for key in ("plt_p50", "plt_p95"):
            old_value = old_extra.get(key)
            new_value = new_extra.get(key)
            row.append((key, old_value, new_value))
            if old_value and new_value is not None:
                ratio = new_value / old_value
                if ratio > 1.0 + args.threshold:
                    regressions.append((
                        "%s[%s]" % (name, key), ratio,
                        old_value, new_value))
        plt_rows.append(row)
    if plt_rows:
        print("\npage-load time (simulated seconds):")
        plt_header = "%-48s %10s %10s %10s %10s" % (
            "benchmark", "p50 base", "p50 new", "p95 base", "p95 new")
        print(plt_header)
        print("-" * len(plt_header))
        for name, p50, p95 in plt_rows:
            def fmt(value):
                return "%.4f" % value if value is not None else "-"
            print("%-48s %10s %10s %10s %10s" % (
                name[:48], fmt(p50[1]), fmt(p50[2]),
                fmt(p95[1]), fmt(p95[2])))

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    for name in only_old:
        print("%-48s (removed: present only in baseline)" % name[:48])
    # A bench with no baseline entry is *new*, not a regression: it
    # gets its first baseline on the next refresh and must never fail
    # the gate.
    for name in only_new:
        print("%-48s (new: no baseline yet)" % name[:48])

    print("\n%d compared, %d improved, %d regressed, %d new, %d removed"
          % (compared, improved, len(regressions), len(only_new),
             len(only_old)))
    if regressions:
        regressions.sort(key=lambda r: r[1], reverse=True)
        print("\nFAIL: %d benchmark(s) slower than baseline by more than "
              "%.0f%% (metric: %s), worst first:"
              % (len(regressions), args.threshold * 100, args.metric))
        for name, ratio, old_value, new_value in regressions:
            print("  %-48s %.6fs -> %.6fs  (+%.1f%%)"
                  % (name, old_value, new_value, (ratio - 1.0) * 100))
        print("\nIf the slowdown is intended, refresh the baseline "
              "(see the bench-check target in the Makefile).")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
