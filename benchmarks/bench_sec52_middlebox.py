"""Sec. 5.2: middlebox interference matrix.

The paper tested TCPLS against stateful firewalls, packet inspection,
and a transparent TLS proxy: the handshake traversed the filters
unharmed, and TLS-terminating equipment triggered a clean fallback to
TLS/TCP.  Legacy servers that abort on unknown extensions trigger the
explicit fallback.  This bench runs the TCPLS handshake through each
modelled device class and prints the behaviour matrix.
"""

from conftest import run_once

from repro.core import TcplsClient, TcplsServer
from repro.net import Simulator, build_multipath
from repro.net.address import Endpoint, IPAddress
from repro.net.middlebox import (
    NAT,
    OptionStrippingFirewall,
    Resegmenter,
    StatefulFirewall,
)
from repro.tcp import TcpStack

PSK = b"mbx-psk"


def run_proxy_scenario():
    """The real TLS-terminating relay: terminates TCP and TLS on both
    sides, answers the ClientHello itself (no TCPLS), re-encrypts."""
    from repro.net.host import Host
    from repro.net.link import duplex_link
    from repro.net.proxy import TlsTerminatingProxy

    sim = Simulator(seed=52)
    client_host = Host(sim, "client")
    proxy_host = Host(sim, "proxy")
    origin_host = Host(sim, "origin")
    c_addr = IPAddress("10.0.0.1")
    fake_server = IPAddress("10.0.0.2")
    p_up, o_addr = IPAddress("10.1.0.1"), IPAddress("10.1.0.2")
    c2p, p2c = duplex_link(sim, client_host, proxy_host,
                           rate_bps=25_000_000, delay=0.005)
    p2o, o2p = duplex_link(sim, proxy_host, origin_host,
                           rate_bps=25_000_000, delay=0.005)
    client_host.add_route(fake_server, client_host.add_interface(
        "c0", c_addr, tx_link=c2p))
    down = proxy_host.add_interface("p0", fake_server, tx_link=p2c)
    up = proxy_host.add_interface("p1", p_up, tx_link=p2o)
    proxy_host.add_route(c_addr, down)
    proxy_host.add_route(o_addr, up)
    origin_host.add_route(p_up, origin_host.add_interface(
        "o0", o_addr, tx_link=o2p))
    cstack = TcpStack(sim, client_host)
    pstack = TcpStack(sim, proxy_host)
    ostack = TcpStack(sim, origin_host)
    TcplsServer(sim, ostack, 443, psk=PSK)
    TlsTerminatingProxy(sim, pstack, 443, Endpoint(o_addr, 443), psk=PSK)
    client = TcplsClient(sim, cstack, psk=PSK)
    client.connect(c_addr, Endpoint(fake_server, 443))
    sim.run(until=5)
    return {
        "connected": client.ready,
        "tcpls": client.tcpls_enabled,
        "fell_back": client.fell_back,
        "data_ok": False,   # plain TLS relay; TCPLS streams unavailable
    }


def run_scenario(name):
    if name == "tls-terminating-proxy":
        return run_proxy_scenario()
    sim = Simulator(seed=52)
    topo = build_multipath(sim, n_paths=2)
    cstack = TcpStack(sim, topo.client)
    sstack = TcpStack(sim, topo.server)
    path = topo.path(0)
    server_kwargs = {}

    if name == "stateful-firewall":
        path.c2s.add_middlebox(StatefulFirewall(sim=sim))
        path.s2c.add_middlebox(StatefulFirewall(sim=sim))
    elif name == "option-stripper":
        path.c2s.add_middlebox(OptionStrippingFirewall())
        path.s2c.add_middlebox(OptionStrippingFirewall())
    elif name == "nat":
        nat = NAT(IPAddress("198.51.100.1"))
        path.c2s.add_middlebox(nat.outbound)
        path.s2c.add_middlebox(nat.inbound)
        topo.server.add_route(IPAddress("198.51.100.1"),
                              topo.server.interfaces[0])
    elif name == "resegmenter":
        path.c2s.add_middlebox(Resegmenter(chunk=536))
    elif name == "legacy-strict-server":
        server_kwargs["enable_tcpls"] = False
        server_kwargs["strict_extensions"] = True
    elif name != "clean-path":
        raise ValueError(name)

    server = TcplsServer(sim, sstack, 443, psk=PSK, **server_kwargs)
    sessions = []
    received = bytearray()

    def on_session(sess):
        sessions.append(sess)
        sess.on_stream_data = lambda st: received.extend(st.recv())

    server.on_session = on_session
    client = TcplsClient(sim, cstack, psk=PSK)
    client.connect(path.client_addr, Endpoint(path.server_addr, 443))
    sim.run(until=5)
    data_ok = False
    if client.ready and client.tcpls_enabled:
        stream = client.create_stream(client.conns[0])
        stream.send(b"probe" * 200)
        sim.run(until=sim.now + 2)
        data_ok = bytes(received).endswith(b"probe" * 200)
    return {
        "connected": client.ready,
        "tcpls": client.tcpls_enabled,
        "fell_back": client.fell_back,
        "data_ok": data_ok,
    }


SCENARIOS = [
    "clean-path",
    "stateful-firewall",
    "option-stripper",
    "nat",
    "resegmenter",
    "tls-terminating-proxy",
    "legacy-strict-server",
]


def test_sec52_middlebox_matrix(benchmark):
    results = run_once(
        benchmark,
        lambda: {name: run_scenario(name) for name in SCENARIOS},
    )
    print("\nSec. 5.2 -- middlebox interference matrix")
    print("%-24s %-10s %-7s %-10s %-8s" % (
        "device", "connected", "tcpls", "fallback", "data"))
    for name, r in results.items():
        print("%-24s %-10s %-7s %-10s %-8s" % (
            name, r["connected"], r["tcpls"], r["fell_back"],
            r["data_ok"]))

    # Paper: "no unexpected interference" through stateful filtering,
    # option manipulation, NAT, resegmentation.
    for name in ("clean-path", "stateful-firewall", "option-stripper",
                 "nat", "resegmenter"):
        assert results[name]["connected"], name
        assert results[name]["tcpls"], name
        assert results[name]["data_ok"], name
    # "transparent TLS proxy successfully triggered TCPLS fallback"
    proxy = results["tls-terminating-proxy"]
    assert proxy["connected"] and not proxy["tcpls"]
    # Legacy servers: explicit fallback (retry without the extension).
    legacy = results["legacy-strict-server"]
    assert legacy["connected"] and not legacy["tcpls"]
    assert legacy["fell_back"]
