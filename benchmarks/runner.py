"""Parallel bench/scenario sweep + experiment-matrix runner.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/runner.py --jobs 4 --json out.json
    PYTHONPATH=src python benchmarks/runner.py --matrix --jobs 4 \
        --json benchmarks/BENCH_matrix.json

The default mode shards the 13 :mod:`sweep_points` determinism-gate
points; ``--matrix`` runs the full declarative experiment matrix (200+
points) with the content-addressed result cache and per-shard journals:

- unchanged points (same spec, same source fingerprint) are served
  from ``.bench_cache/`` (``--cache-dir`` / ``$REPRO_BENCH_CACHE``)
  without spawning a worker -- an immediately repeated matrix run is
  ~100% cache hits and finishes in seconds;
- ``--resume`` reuses successful entries from the journal directory
  and re-runs only missing/failed points;
- ``--rerun-failed`` re-executes exactly the points whose journalled
  result carried an ``"error"`` tag (implies ``--resume``).

The merged JSON is byte-identical for any ``--jobs`` value, shard
split, interrupt/resume history or cache state; CI asserts it with
``cmp``.  Cache statistics go to stderr and ``--stats-json`` only --
never into the merged report.
"""

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the merged report here")
    parser.add_argument("--points", default=None,
                        help="comma-separated point-name filter "
                             "(substring match unless --exact)")
    parser.add_argument("--exact", action="store_true",
                        help="match --points filters against whole "
                             "point names instead of substrings")
    parser.add_argument("--list", action="store_true",
                        help="list point names and exit")
    parser.add_argument("--matrix", action="store_true",
                        help="run the full experiment matrix (with "
                             "result cache + shard journals) instead "
                             "of the 13-point determinism sweep")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result-cache root (default: "
                             "$REPRO_BENCH_CACHE or .bench_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache (every point "
                             "executes)")
    parser.add_argument("--journal-dir", default=None, metavar="DIR",
                        help="shard-journal directory (default: "
                             "<cache-dir>/journal; matrix mode only)")
    parser.add_argument("--resume", action="store_true",
                        help="reuse successful journal entries; re-run "
                             "only missing/failed points")
    parser.add_argument("--rerun-failed", action="store_true",
                        help="re-execute exactly the journalled points "
                             "whose result carried an error tag")
    parser.add_argument("--stats-json", default=None, metavar="PATH",
                        help="write cache/journal statistics here "
                             "(kept out of the merged report so it "
                             "stays byte-identical across runs)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="run the points serially in-process under "
                             "cProfile and dump the stats file here "
                             "(pool workers cannot be profiled from the "
                             "parent; implies --jobs 1 semantics)")
    args = parser.parse_args(argv)

    import sweep_points
    from repro.perf import filter_points, run_sweep, sweep_to_json

    if args.matrix:
        points = sweep_points.default_matrix()
    else:
        points = sweep_points.default_points()
    wanted = None
    if args.points:
        wanted = [w.strip() for w in args.points.split(",") if w.strip()]
        points = filter_points(points, wanted, exact=args.exact)
    if args.list:
        for point in points:
            print(point.name)
        return 0
    if not points:
        print("no sweep points matched", file=sys.stderr)
        return 2

    started = time.perf_counter()
    stats = None
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        results = []
        profiler.enable()
        for point in points:
            try:
                results.append({"name": point.name,
                                "metrics": point.run()})
            except Exception as exc:   # mirror the pool's error shape
                results.append({"name": point.name, "error": repr(exc)})
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats_obj = pstats.Stats(profiler)
        print("profile: %d calls in %.3fs -> %s (top 10 by cumulative:)"
              % (stats_obj.total_calls, stats_obj.total_tt, args.profile),
              file=sys.stderr)
        stats_obj.sort_stats("cumulative").print_stats(10)
    elif args.matrix:
        from repro.perf import ResultCache, ShardJournal, run_matrix
        from repro.perf.cache import resolve_cache_dir

        cache = None
        if not args.no_cache:
            cache = ResultCache.open(
                args.cache_dir,
                roots=[os.path.join(_SRC, "repro"), _HERE])
        journal_dir = args.journal_dir or os.path.join(
            resolve_cache_dir(args.cache_dir), "journal")
        journal = ShardJournal(journal_dir)
        results, stats = run_matrix(
            points, jobs=args.jobs, cache=cache, journal=journal,
            resume=args.resume or args.rerun_failed,
            rerun_failed=args.rerun_failed)
    else:
        results = run_sweep(points, jobs=args.jobs)
    elapsed = time.perf_counter() - started

    failures = [r for r in results if "error" in r]
    text = sweep_to_json(results, args.json)
    if args.json:
        print("wrote %s (%d points, %d workers, %.1fs wall)"
              % (args.json, len(results), args.jobs, elapsed))
    else:
        sys.stdout.write(text)
    if stats is not None:
        print("cache: %s" % stats.summary(), file=sys.stderr)
        if args.stats_json:
            import json as _json

            doc = stats.to_dict()
            doc["points"] = len(results)
            doc["wall_s"] = round(elapsed, 3)
            with open(args.stats_json, "w") as handle:
                _json.dump(doc, handle, sort_keys=True, indent=2)
                handle.write("\n")
    for failure in failures:
        print("FAILED %s: %s" % (failure["name"], failure["error"]),
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
