"""Parallel bench/scenario sweep runner.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/runner.py --jobs 4 --json out.json

Shards the sweep points from :mod:`sweep_points` across worker
processes (see :mod:`repro.perf.sweep` for the determinism rules) and
writes a canonical JSON report.  The output is byte-identical for any
``--jobs`` value; CI asserts ``--jobs 1`` == ``--jobs 2`` with ``cmp``.
"""

import argparse
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the merged report here")
    parser.add_argument("--points", default=None,
                        help="comma-separated point-name filter "
                             "(substring match)")
    parser.add_argument("--list", action="store_true",
                        help="list point names and exit")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="run the points serially in-process under "
                             "cProfile and dump the stats file here "
                             "(pool workers cannot be profiled from the "
                             "parent; implies --jobs 1 semantics)")
    args = parser.parse_args(argv)

    import sweep_points
    from repro.perf import run_sweep, sweep_to_json

    points = sweep_points.default_points()
    if args.points:
        wanted = [w.strip() for w in args.points.split(",") if w.strip()]
        points = [p for p in points
                  if any(w in p.name for w in wanted)]
    if args.list:
        for point in points:
            print(point.name)
        return 0
    if not points:
        print("no sweep points matched", file=sys.stderr)
        return 2

    started = time.perf_counter()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        results = []
        profiler.enable()
        for point in points:
            try:
                results.append({"name": point.name,
                                "metrics": point.run()})
            except Exception as exc:   # mirror the pool's error shape
                results.append({"name": point.name, "error": repr(exc)})
        profiler.disable()
        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler)
        print("profile: %d calls in %.3fs -> %s (top 10 by cumulative:)"
              % (stats.total_calls, stats.total_tt, args.profile),
              file=sys.stderr)
        stats.sort_stats("cumulative").print_stats(10)
    else:
        results = run_sweep(points, jobs=args.jobs)
    elapsed = time.perf_counter() - started

    failures = [r for r in results if "error" in r]
    text = sweep_to_json(results, args.json)
    if args.json:
        print("wrote %s (%d points, %d workers, %.1fs wall)"
              % (args.json, len(results), args.jobs, elapsed))
    else:
        sys.stdout.write(text)
    for failure in failures:
        print("FAILED %s: %s" % (failure["name"], failure["error"]),
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
