"""Table 1: transport services offered by each protocol.

Regenerates the feature matrix by introspecting what each implemented
stack actually exposes, rather than hard-coding the table.
"""

from conftest import run_once


def probe_features():
    """Derive the feature matrix from the implementations."""
    from repro.tcp.connection import TcpConnection
    from repro.baselines.mptcp import MptcpConnection
    from repro.baselines.quic.connection import QuicConnection
    from repro.core.session import TcplsSession
    from repro.tls.endpoint import _TlsEndpoint

    def has(cls, *names):
        return all(hasattr(cls, name) for name in names)

    matrix = {}
    matrix["TCP"] = {
        "reliability": has(TcpConnection, "_retransmit_lost", "_on_rto"),
        "conf_auth": False,
        "failover": False,
        "hol_avoidance": False,
        "streams": False,
        "migration": False,
        "concurrent_paths": False,
    }
    matrix["MPTCP"] = {
        "reliability": True,
        "conf_auth": False,
        "failover": has(MptcpConnection, "_on_subflow_failed"),
        "hol_avoidance": False,   # one data sequence space
        "streams": False,
        "migration": "partial",   # path managers, not app-driven
        "concurrent_paths": has(MptcpConnection, "_pick_subflow"),
    }
    matrix["TLS/TCP"] = {
        "reliability": True,
        "conf_auth": has(_TlsEndpoint, "send_application_data"),
        "failover": False,
        "hol_avoidance": False,
        "streams": False,
        "migration": False,
        "concurrent_paths": False,
    }
    matrix["QUIC"] = {
        "reliability": has(QuicConnection, "_detect_losses"),
        "conf_auth": True,
        "failover": "partial",
        "hol_avoidance": has(QuicConnection, "open_stream"),
        "streams": True,
        "migration": "partial",   # not app-triggered in implementations
        "concurrent_paths": False,
    }
    matrix["TCPLS"] = {
        "reliability": True,
        "conf_auth": True,
        "failover": has(TcplsSession, "_do_failover", "_replay_unacked"),
        "hol_avoidance": "partial",  # per-stream, unless coupled
        "streams": has(TcplsSession, "create_stream"),
        "migration": has(TcplsSession, "steer_stream", "add_group_stream"),
        "concurrent_paths": has(TcplsSession, "create_coupled_group"),
    }
    return matrix


FEATURES = [
    ("reliability", "Reliability & cong. control"),
    ("conf_auth", "Message conf. and auth."),
    ("failover", "Failover"),
    ("hol_avoidance", "HoL blocking avoidance"),
    ("streams", "Streams"),
    ("migration", "Connection migration"),
    ("concurrent_paths", "Concurrent paths"),
]

#: Table 1 of the paper, for comparison.
PAPER = {
    "TCP": [True, False, False, False, False, False, False],
    "MPTCP": [True, False, True, False, False, "partial", True],
    "TLS/TCP": [True, True, False, False, False, False, False],
    "QUIC": [True, True, "partial", True, True, "partial", False],
    "TCPLS": [True, True, True, "partial", True, True, True],
}


def mark(value):
    return {True: "yes", False: "-", "partial": "(yes)"}[value]


def test_table1_feature_matrix(benchmark):
    matrix = run_once(benchmark, probe_features)
    header = "%-28s" % "Service" + "".join(
        "%-9s" % name for name in matrix)
    print("\nTable 1 -- transport services (regenerated)")
    print(header)
    for key, label in FEATURES:
        row = "%-28s" % label + "".join(
            "%-9s" % mark(matrix[proto][key]) for proto in matrix)
        print(row)
    # Shape assertions: the regenerated matrix equals the paper's, with
    # one documented divergence -- our QUIC model does not implement
    # migration, the paper credits implementations with partial support.
    for proto, paper_row in PAPER.items():
        ours = [matrix[proto][key] for key, _label in FEATURES]
        assert ours == paper_row, (proto, ours, paper_row)
