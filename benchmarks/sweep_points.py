"""Sweep points for the parallel bench runner (``runner.py``).

Each point is a plain top-level function returning a JSON-serialisable
metrics dict, so :mod:`repro.perf.sweep` can pickle it by reference
into spawn workers.  Scenario points run scaled-down versions of the
fig8/fig9 simulations (a couple of MiB instead of tens) -- big enough
to exercise handshakes, outages and recovery, small enough that the
JOBS=1 vs JOBS=2 determinism gate in CI stays cheap.

Every metric here must be bit-deterministic: times come from the
simulator clock, byte counts from stack counters.  Nothing may read
wall-clock time or unseeded randomness.
"""

from common import build_mptcp_upload, build_tcpls_download
from repro.net import Simulator, build_faulty_multipath
from repro.perf import (
    CpuProfile,
    TcplsModel,
    TcplsVariant,
    TlsTcpModel,
    solve_throughput_gbps,
)

POINT_SIZE = 2 << 20
HORIZON = 60.0

#: in-memory AEAD rates (Gbps seal, Gbps open) per cipher suite.  The
#: AES-128-GCM numbers are the paper's own measurements (Sec. 5.1);
#: ChaCha20-Poly1305 has no AES-NI/CLMUL asymmetry, so both directions
#: run at the same software rate on the modelled testbed.
CIPHER_RATES = {
    "aes128gcm": (13.62, 24.59),
    "chacha20poly1305": (10.9, 10.9),
}


def _series_digest(series):
    """Order-sensitive checksum of a goodput series (stable floats)."""
    digest = 0.0
    for t, v in series:
        digest += t * 3.0 + v
    return round(digest, 6)


def fig7_model_point(stack="tcpls", mtu=1500, cipher="aes128gcm",
                     record_size=16384, ack_interval=16):
    """Analytic Fig. 7 throughput for one stack/MTU/cipher combination."""
    seal_gbps, open_gbps = CIPHER_RATES[cipher]
    cpu = CpuProfile(aead_seal_ns_per_byte=8 / seal_gbps,
                     aead_open_ns_per_byte=8 / open_gbps)
    if stack == "tls-tcp":
        model = TlsTcpModel(cpu, mtu=mtu, record_size=record_size)
    elif stack == "tcpls":
        model = TcplsModel(cpu, mtu=mtu, record_size=record_size)
    elif stack == "tcpls-failover":
        model = TcplsModel(cpu, mtu=mtu, record_size=record_size,
                           variant=TcplsVariant.FAILOVER,
                           ack_interval=ack_interval)
    elif stack == "tcpls-multipath":
        model = TcplsModel(cpu, mtu=mtu, record_size=record_size,
                           variant=TcplsVariant.MULTIPATH,
                           ack_interval=ack_interval)
    else:
        raise ValueError("unknown stack %r" % stack)
    gbps = solve_throughput_gbps(model)
    return {"stack": stack, "mtu": mtu, "cipher": cipher,
            "record_size": record_size, "gbps": round(gbps, 6)}


def fig8_tcpls_point(outage="blackhole", outage_at=0.3, size=POINT_SIZE,
                     seed=8):
    """Scaled-down Fig. 8: TCPLS download through one outage."""
    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=2)
    client, sessions, probe, done = build_tcpls_download(sim, topo, size)
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="s2c")
    sim.run(until=HORIZON)
    return {
        "outage": outage,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def fig8_mptcp_point(outage="blackhole", outage_at=0.3, size=POINT_SIZE,
                     seed=8):
    """Scaled-down Fig. 8: MPTCP upload through one outage."""
    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=2)
    client, probe, done = build_mptcp_upload(sim, topo, size,
                                             path_manager="backup")
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="c2s")
    sim.run(until=HORIZON)
    return {
        "outage": outage,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def fig9_rotation_point(rotate_every=0.5, size=POINT_SIZE, n_paths=4,
                        seed=9):
    """Scaled-down Fig. 9: rotating single working path."""
    sim = Simulator(seed=seed)
    topo = build_faulty_multipath(sim, n_paths=n_paths,
                                  families=[4, 6, 4, 6])
    client, sessions, probe, done = build_tcpls_download(
        sim, topo, size, uto=None,
        client_kwargs={"join_timeout": 0.5},
    )
    client.auto_user_timeout = 0.25
    topo.rotate_working(rotate_every)
    sim.run(until=HORIZON)
    return {
        "rotate_every": rotate_every,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def c1m_loadgen_point(sessions=400, failover_sessions=8, seed=42):
    """Scaled-down C1M churn run: hundreds of sessions through one
    :class:`~repro.core.drivers.multi.MultiSessionServer`, with joins,
    a mid-transfer path outage and close/reconnect churn.  The full
    10k-session run lives in ``bench_c1m.py``; this point keeps the
    multi-session path under the JOBS determinism gate."""
    from repro.perf.loadgen import run_shard

    return run_shard(sessions=sessions,
                     failover_sessions=failover_sessions, seed=seed)


def fluid_scenario_point(scenario="fairness", flows=20_000, seed=42):
    """Scaled-down fluid fast-forward population: the 100k-flow
    scenarios live in ``bench_c1m.py --fluid``; this point keeps the
    closed-form engine under the JOBS determinism gate."""
    from repro.perf.loadgen import run_fluid_scenario

    metrics = run_fluid_scenario(scenario=scenario, flows=flows,
                                 seed=seed)
    metrics.pop("links", None)     # bulky and redundant under the gate
    return metrics


def pageload_point(stack="tcpls", policy="round-robin", grid="ge-light",
                   seed=42):
    """Scaled-down page-load cell: a synthetic page burst over one
    stack under one scheduling policy on a Gilbert-Elliott loss grid.
    The full policy x stack x grid matrix lives in
    ``bench_pageload.py``; this point keeps the workload layer (pool,
    transfer manager, assign_transfer decisions) under the JOBS
    determinism gate."""
    from repro.perf.pageload import run_pageload_cell

    return run_pageload_cell(stack=stack, policy=policy, grid=grid,
                             pages=3, waves=2, n_objects=12,
                             horizon=60.0, seed=seed)


def fig8_matrix_point(proto="tcpls", outage="blackhole", outage_at=0.3,
                      seed=8):
    """Matrix dispatcher over the two Fig. 8 protocol stacks (one
    picklable fn per family; the ``proto`` axis picks the scenario)."""
    if proto == "tcpls":
        return fig8_tcpls_point(outage=outage, outage_at=outage_at,
                                seed=seed)
    if proto == "mptcp":
        return fig8_mptcp_point(outage=outage, outage_at=outage_at,
                                seed=seed)
    raise ValueError("unknown proto %r" % proto)


def default_matrix():
    """The full experiment matrix: scenario x topology x cipher x
    scheduler x seed families expanding to 200+ points.

    This supersedes the 13-point :func:`default_points` list for
    evaluation purposes (the small list stays as the cheap JOBS
    determinism gate): the same point functions are crossed over
    explicit axes, validity predicates drop meaningless combinations
    (an ``ack_interval`` only matters to the failover/multipath
    variants; a C1M shard cannot fail over more sessions than it
    serves), and every point carries its axis assignment into the
    merged JSON so the trend gate can group regressions by axis value.
    """
    from repro.perf import Axis, MatrixSpec, expand_matrix

    specs = [
        MatrixSpec(
            "fig7", fig7_model_point,
            [Axis("stack", ("tls-tcp", "tcpls", "tcpls-failover",
                            "tcpls-multipath")),
             Axis("mtu", (1500, 9000)),
             Axis("cipher", ("aes128gcm", "chacha20poly1305")),
             Axis("recsize", (1024, 2048, 4096, 8192, 16384)),
             Axis("ack", (8, 16))],
            # Record-ACK spacing only exists once the failover machinery
            # is on; keep the default (16) for the plain stacks.
            valid=lambda c: c["ack"] == 16 or c["stack"] in (
                "tcpls-failover", "tcpls-multipath"),
            to_kwargs=lambda c: {
                "stack": c["stack"], "mtu": c["mtu"],
                "cipher": c["cipher"], "record_size": c["recsize"],
                "ack_interval": c["ack"]}),
        MatrixSpec(
            "fig8", fig8_matrix_point,
            [Axis("proto", ("tcpls", "mptcp")),
             Axis("outage", ("blackhole", "rst")),
             Axis("at", (0.2, 0.3, 0.45)),
             Axis("seed", (8, 18, 28))],
            to_kwargs=lambda c: {
                "proto": c["proto"], "outage": c["outage"],
                "outage_at": c["at"], "seed": c["seed"]}),
        MatrixSpec(
            "fig9", fig9_rotation_point,
            [Axis("rotate", (0.35, 0.5, 0.8)),
             Axis("paths", (2, 4)),
             Axis("seed", (9, 19, 29))],
            to_kwargs=lambda c: {
                "rotate_every": c["rotate"], "n_paths": c["paths"],
                "seed": c["seed"]}),
        MatrixSpec(
            "c1m", c1m_loadgen_point,
            [Axis("sessions", (120, 240)),
             Axis("failover", (0, 8, 24))],
            # A shard cannot meaningfully fail over more than a tenth
            # of its population mid-run.
            valid=lambda c: c["failover"] * 10 <= c["sessions"],
            to_kwargs=lambda c: {
                "sessions": c["sessions"],
                "failover_sessions": c["failover"]}),
        MatrixSpec(
            "fluid", fluid_scenario_point,
            [Axis("scenario", ("fairness", "incast", "failover_storm")),
             Axis("flows", (2000, 10000))]),
        MatrixSpec(
            "pageload", pageload_point,
            [Axis("stack", ("tcpls", "quic", "mptcp")),
             Axis("policy", ("round-robin", "lowest-rtt", "predictive")),
             Axis("grid", ("clean", "ge-light", "ge-burst"))]),
    ]
    return expand_matrix(specs)


def default_points():
    """The standard sweep, in canonical (merge) order."""
    from repro.perf import SweepPoint

    points = []
    for stack in ("tls-tcp", "tcpls", "tcpls-failover", "tcpls-multipath"):
        for mtu in (1500, 9000):
            points.append(SweepPoint(
                "fig7/%s/mtu%d" % (stack, mtu),
                fig7_model_point, {"stack": stack, "mtu": mtu}))
    for outage in ("blackhole", "rst"):
        points.append(SweepPoint("fig8/tcpls/%s" % outage,
                                 fig8_tcpls_point, {"outage": outage}))
        points.append(SweepPoint("fig8/mptcp/%s" % outage,
                                 fig8_mptcp_point, {"outage": outage}))
    points.append(SweepPoint("fig9/rotation", fig9_rotation_point))
    points.append(SweepPoint("c1m/loadgen", c1m_loadgen_point))
    for scenario in ("fairness", "incast", "failover_storm"):
        points.append(SweepPoint("fluid/%s" % scenario,
                                 fluid_scenario_point,
                                 {"scenario": scenario}))
    for stack, policy in (("tcpls", "round-robin"),
                          ("tcpls", "predictive"),
                          ("quic", "round-robin")):
        points.append(SweepPoint("pageload/%s/%s" % (stack, policy),
                                 pageload_point,
                                 {"stack": stack, "policy": policy}))
    return points
