"""Sweep points for the parallel bench runner (``runner.py``).

Each point is a plain top-level function returning a JSON-serialisable
metrics dict, so :mod:`repro.perf.sweep` can pickle it by reference
into spawn workers.  Scenario points run scaled-down versions of the
fig8/fig9 simulations (a couple of MiB instead of tens) -- big enough
to exercise handshakes, outages and recovery, small enough that the
JOBS=1 vs JOBS=2 determinism gate in CI stays cheap.

Every metric here must be bit-deterministic: times come from the
simulator clock, byte counts from stack counters.  Nothing may read
wall-clock time or unseeded randomness.
"""

from common import build_mptcp_upload, build_tcpls_download
from repro.net import Simulator, build_faulty_multipath
from repro.perf import (
    CpuProfile,
    TcplsModel,
    TcplsVariant,
    TlsTcpModel,
    solve_throughput_gbps,
)

POINT_SIZE = 2 << 20
HORIZON = 60.0


def _series_digest(series):
    """Order-sensitive checksum of a goodput series (stable floats)."""
    digest = 0.0
    for t, v in series:
        digest += t * 3.0 + v
    return round(digest, 6)


def fig7_model_point(stack="tcpls", mtu=1500):
    """Analytic Fig. 7 throughput for one stack/MTU combination."""
    cpu = CpuProfile()
    if stack == "tls-tcp":
        model = TlsTcpModel(cpu, mtu=mtu)
    elif stack == "tcpls":
        model = TcplsModel(cpu, mtu=mtu)
    elif stack == "tcpls-failover":
        model = TcplsModel(cpu, mtu=mtu, variant=TcplsVariant.FAILOVER)
    elif stack == "tcpls-multipath":
        model = TcplsModel(cpu, mtu=mtu, variant=TcplsVariant.MULTIPATH)
    else:
        raise ValueError("unknown stack %r" % stack)
    gbps = solve_throughput_gbps(model)
    return {"stack": stack, "mtu": mtu, "gbps": round(gbps, 6)}


def fig8_tcpls_point(outage="blackhole", outage_at=0.3, size=POINT_SIZE):
    """Scaled-down Fig. 8: TCPLS download through one outage."""
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    client, sessions, probe, done = build_tcpls_download(sim, topo, size)
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="s2c")
    sim.run(until=HORIZON)
    return {
        "outage": outage,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def fig8_mptcp_point(outage="blackhole", outage_at=0.3, size=POINT_SIZE):
    """Scaled-down Fig. 8: MPTCP upload through one outage."""
    sim = Simulator(seed=8)
    topo = build_faulty_multipath(sim, n_paths=2)
    client, probe, done = build_mptcp_upload(sim, topo, size,
                                             path_manager="backup")
    if outage == "blackhole":
        topo.flap_path(0, at=outage_at)
    else:
        topo.rst_path(0, at=outage_at, direction="c2s")
    sim.run(until=HORIZON)
    return {
        "outage": outage,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def fig9_rotation_point(rotate_every=0.5, size=POINT_SIZE, n_paths=4):
    """Scaled-down Fig. 9: rotating single working path."""
    sim = Simulator(seed=9)
    topo = build_faulty_multipath(sim, n_paths=n_paths,
                                  families=[4, 6, 4, 6])
    client, sessions, probe, done = build_tcpls_download(
        sim, topo, size, uto=None,
        client_kwargs={"join_timeout": 0.5},
    )
    client.auto_user_timeout = 0.25
    topo.rotate_working(rotate_every)
    sim.run(until=HORIZON)
    return {
        "rotate_every": rotate_every,
        "done_at": round(done[0], 9) if done else None,
        "series_digest": _series_digest(probe.series()),
        "bytes_delivered": probe.total,
    }


def c1m_loadgen_point(sessions=400, failover_sessions=8):
    """Scaled-down C1M churn run: hundreds of sessions through one
    :class:`~repro.core.drivers.multi.MultiSessionServer`, with joins,
    a mid-transfer path outage and close/reconnect churn.  The full
    10k-session run lives in ``bench_c1m.py``; this point keeps the
    multi-session path under the JOBS determinism gate."""
    from repro.perf.loadgen import run_shard

    return run_shard(sessions=sessions,
                     failover_sessions=failover_sessions)


def fluid_scenario_point(scenario="fairness", flows=20_000):
    """Scaled-down fluid fast-forward population: the 100k-flow
    scenarios live in ``bench_c1m.py --fluid``; this point keeps the
    closed-form engine under the JOBS determinism gate."""
    from repro.perf.loadgen import run_fluid_scenario

    metrics = run_fluid_scenario(scenario=scenario, flows=flows)
    metrics.pop("links", None)     # bulky and redundant under the gate
    return metrics


def pageload_point(stack="tcpls", policy="round-robin", grid="ge-light"):
    """Scaled-down page-load cell: a synthetic page burst over one
    stack under one scheduling policy on a Gilbert-Elliott loss grid.
    The full policy x stack x grid matrix lives in
    ``bench_pageload.py``; this point keeps the workload layer (pool,
    transfer manager, assign_transfer decisions) under the JOBS
    determinism gate."""
    from repro.perf.pageload import pageload_sweep_point

    return pageload_sweep_point(stack=stack, policy=policy, grid=grid)


def default_points():
    """The standard sweep, in canonical (merge) order."""
    from repro.perf import SweepPoint

    points = []
    for stack in ("tls-tcp", "tcpls", "tcpls-failover", "tcpls-multipath"):
        for mtu in (1500, 9000):
            points.append(SweepPoint(
                "fig7/%s/mtu%d" % (stack, mtu),
                fig7_model_point, {"stack": stack, "mtu": mtu}))
    for outage in ("blackhole", "rst"):
        points.append(SweepPoint("fig8/tcpls/%s" % outage,
                                 fig8_tcpls_point, {"outage": outage}))
        points.append(SweepPoint("fig8/mptcp/%s" % outage,
                                 fig8_mptcp_point, {"outage": outage}))
    points.append(SweepPoint("fig9/rotation", fig9_rotation_point))
    points.append(SweepPoint("c1m/loadgen", c1m_loadgen_point))
    for scenario in ("fairness", "incast", "failover_storm"):
        points.append(SweepPoint("fluid/%s" % scenario,
                                 fluid_scenario_point,
                                 {"scenario": scenario}))
    for stack, policy in (("tcpls", "round-robin"),
                          ("tcpls", "predictive"),
                          ("quic", "round-robin")):
        points.append(SweepPoint("pageload/%s/%s" % (stack, policy),
                                 pageload_point,
                                 {"stack": stack, "policy": policy}))
    return points
