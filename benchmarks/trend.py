"""Whole-matrix trend gate: diff a matrix report against the envelope.

Usage::

    python benchmarks/trend.py benchmarks/baselines/BENCH_matrix.json \
        benchmarks/BENCH_matrix.json [--threshold 0.2]

Both files are merged matrix reports from ``runner.py --matrix``.
Every point's *directional* metrics are compared: a metric listed in
``LOWER_IS_BETTER`` (completion times, page-load percentiles) regresses
when it grows past the threshold, one in ``HIGHER_IS_BETTER``
(throughput, delivered bytes) when it shrinks past it.  Digests,
counters and other non-directional values are ignored -- the golden
traces already pin those bit-for-bit.

Unlike the flat per-bench list in ``compare.py``, failures are grouped
by axis value: the matrix points carry their axis assignment
(``{"axes": {"cipher": "chacha20poly1305", ...}}``), so the report
says "all cipher=chacha20poly1305 points slowed" instead of printing
hundreds of indistinguishable rows.  Points that error in the new run
but succeeded in the envelope always fail the gate.
"""

import argparse
import json
import sys
from collections import defaultdict

#: metric -> smaller is better (simulated completion/latency seconds)
LOWER_IS_BETTER = frozenset((
    "done_at", "plt_p50", "plt_p95", "plt_max",
    "handshake_p99", "transfer_p99", "duration", "wall_s",
))
#: metric -> larger is better (rates and delivered volume)
HIGHER_IS_BETTER = frozenset((
    "gbps", "bytes_delivered", "bytes", "sessions_per_sec",
    "bytes_per_sec", "goodput_gbps", "jain_index", "utilization",
    "pages_completed", "objects_completed", "transfers_completed",
))


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    out = {}
    for entry in doc.get("results", []):
        name = entry.get("name")
        if name:
            out[name] = entry
    return out


def directional_metrics(metrics):
    """(metric, value, lower_is_better) for every comparable scalar."""
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in LOWER_IS_BETTER:
            yield key, float(value), True
        elif key in HIGHER_IS_BETTER:
            yield key, float(value), False


def compare_point(old_metrics, new_metrics, threshold):
    """Regressions for one point: [(metric, old, new, severity)]."""
    found = []
    for key, old_value, lower_better in directional_metrics(old_metrics):
        new_value = new_metrics.get(key)
        if not isinstance(new_value, (int, float)) or \
                isinstance(new_value, bool):
            continue
        new_value = float(new_value)
        if old_value == 0.0:
            continue
        ratio = new_value / old_value
        severity = (ratio - 1.0) if lower_better else (1.0 - ratio)
        if severity > threshold:
            found.append((key, old_value, new_value, severity))
    return found


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail if the matrix regressed against its envelope")
    parser.add_argument("baseline", help="committed envelope JSON")
    parser.add_argument("new", help="freshly produced matrix JSON")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed relative drift (default 0.2)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    new = load(args.new)
    shared = sorted(set(baseline) & set(new))

    regressed = {}          # name -> [(metric, old, new, severity)]
    new_errors = []
    compared = 0
    for name in shared:
        old_entry, new_entry = baseline[name], new[name]
        if "error" in new_entry:
            if "error" not in old_entry:
                new_errors.append((name, new_entry["error"]))
            continue
        if "error" in old_entry or "metrics" not in old_entry:
            continue
        compared += 1
        found = compare_point(old_entry["metrics"],
                              new_entry["metrics"], args.threshold)
        if found:
            regressed[name] = found

    # -- group by axis value ------------------------------------------------
    groups = defaultdict(lambda: [0, 0])    # (axis, value) -> [bad, total]
    for name in shared:
        entry = new[name]
        axes = dict(entry.get("axes") or {})
        axes["family"] = name.split("/", 1)[0]
        for axis, value in sorted(axes.items()):
            cell = groups[(axis, str(value))]
            cell[1] += 1
            if name in regressed:
                cell[0] += 1

    only_old = sorted(set(baseline) - set(new))
    only_new = sorted(set(new) - set(baseline))
    print("%d points compared against the envelope "
          "(%d regressed, %d new errors, %d new, %d removed)"
          % (compared, len(regressed), len(new_errors), len(only_new),
             len(only_old)))

    if regressed:
        ranked = sorted(
            ((bad / total, bad, total, axis, value)
             for (axis, value), (bad, total) in groups.items() if bad),
            reverse=True)
        print("\nregressions grouped by axis value (worst first):")
        for fraction, bad, total, axis, value in ranked:
            note = "  <-- ALL points of this value" if bad == total \
                and total > 1 else ""
            print("  %-28s %3d/%-3d regressed (%.0f%%)%s"
                  % ("%s=%s" % (axis, value), bad, total,
                     fraction * 100, note))
        worst = sorted(regressed.items(),
                       key=lambda item: -max(f[3] for f in item[1]))
        print("\nworst individual points:")
        for name, found in worst[:10]:
            metric, old_value, new_value, severity = max(
                found, key=lambda f: f[3])
            print("  %-64s %s %.6g -> %.6g (%+.1f%%)"
                  % (name, metric, old_value, new_value, severity * 100))
        if len(worst) > 10:
            print("  ... and %d more" % (len(worst) - 10))
    for name, error in new_errors:
        print("NEW ERROR %s: %s" % (name, error))
    for name in only_new:
        print("%-64s (new: no envelope entry yet)" % name)
    for name in only_old:
        print("%-64s (removed: present only in envelope)" % name)

    if regressed or new_errors:
        print("\nFAIL: matrix drifted past %.0f%% of the committed "
              "envelope.  If the change is intended, refresh "
              "benchmarks/baselines/BENCH_matrix.json (see bench-matrix "
              "in the Makefile)." % (args.threshold * 100))
        return 1
    print("matrix within the envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
